// Experiment E2 (DESIGN.md): the Section 1.1 possible-worlds table.
//
// Paper claim: with A = "r1 in omega" and B = "r1 in omega => r2 in omega",
// learning B rules out exactly the cell (r1=1, r2=0) and can only LOWER the
// odds of A: P[A | B] <= P[A] for every prior, regardless of record
// correlations — even though A and B share the critical record r1, so
// perfect secrecy (Miklau-Suciu) rejects the disclosure.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>

#include "criteria/miklau_suciu.h"
#include "criteria/pipeline.h"
#include "db/parser.h"
#include "db/record.h"
#include "probabilistic/distribution.h"

using namespace epi;

int main() {
  RecordUniverse universe;
  universe.add("r1");  // "Bob is HIV-positive"
  universe.add("r2");  // "Bob had blood transfusions"
  const WorldSet a = parse_query("r1")->compile(universe);
  const WorldSet b = parse_query("r1 -> r2")->compile(universe);

  std::printf("=== E2: Section 1.1 possible-worlds table ===\n\n");
  std::printf("              | r2 in w     | r2 not in w\n");
  std::printf("  ------------+-------------+-------------\n");
  for (int r1 = 1; r1 >= 0; --r1) {
    std::printf("  r1 %s w  |", r1 ? "in    " : "not in");
    for (int r2 = 1; r2 >= 0; --r2) {
      World w = 0;
      if (r1) w = world_with_bit(w, 0, true);
      if (r2) w = world_with_bit(w, 1, true);
      std::printf(" A %-5s %s |", a.contains(w) ? "true" : "false",
                  b.contains(w) ? " " : "X");
    }
    std::printf("\n");
  }
  std::printf("  (X marks the cell ruled out by learning B — the paper's check mark)\n\n");

  // Randomized check over arbitrary (correlated) priors. The conditional
  // runs on the fused P[A∩B] kernel; the fused-axis section below times this
  // very scan against the allocate-then-sum idiom it replaced.
  Rng rng(11);
  const int trials = 100000;
  double worst_gain = -1.0;
  double worst_direct_gain = -1.0;
  const WorldSet direct = a;  // Mallory's direct query
  const auto fused_t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < trials; ++i) {
    const Distribution p = Distribution::random(2, rng);
    worst_gain = std::max(worst_gain, p.conditional(a, b) - p.prob(a));
    worst_direct_gain =
        std::max(worst_direct_gain, p.conditional(a, direct) - p.prob(a));
  }
  const double fused_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - fused_t0)
          .count();
  std::printf("max over %d random priors of P[A|B] - P[A]:\n", trials);
  std::printf("  implication query B = (r1 -> r2): % .3e   (paper: <= 0 always)\n",
              worst_gain);
  std::printf("  direct query      B = r1        : % .3e   (> 0: a breach)\n\n",
              worst_direct_gain);

  // Fused axis: the same 100k-prior scan with P[A∩B] computed the
  // pre-kernel way — materialize A∩B, then sum its weights through a
  // type-erased std::function per world. Gains must match bit for bit.
  {
    Rng naive_rng(11);
    double naive_worst = -1.0;
    double naive_worst_direct = -1.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < trials; ++i) {
      const Distribution p = Distribution::random(2, naive_rng);
      const std::function<double(const WorldSet&, const WorldSet&)> cond =
          [&p](const WorldSet& x, const WorldSet& y) {
            double pxy = 0.0;
            (x & y).visit([&](World w) { pxy += p.prob(w); });
            return pxy / p.prob(y);
          };
      naive_worst = std::max(naive_worst, cond(a, b) - p.prob(a));
      naive_worst_direct =
          std::max(naive_worst_direct, cond(a, direct) - p.prob(a));
    }
    const double naive_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("fused axis (same scan, P[A|B] via the dense_bits kernel):\n");
    std::printf("  naive allocate-then-sum: %.3f s   fused: %.3f s   (%.2fx)\n",
                naive_seconds, fused_seconds, naive_seconds / fused_seconds);
    std::printf("  gains identical: %s\n\n",
                (naive_worst == worst_gain &&
                 naive_worst_direct == worst_direct_gain)
                    ? "yes (bit-for-bit)"
                    : "NO — kernel changed float accumulation order");
  }

  std::printf("verdict comparison for the implication query:\n");
  std::printf("  perfect secrecy (Miklau-Suciu, shares critical record r1): %s\n",
              miklau_suciu_independent(a, b) ? "allows" : "REJECTS");
  const PipelineResult unrestricted =
      run_criteria(unrestricted_criteria(), a, b, "unreachable");
  const PipelineResult product = run_criteria(
      product_criteria(), a, b, "exhausted-combinatorial-criteria");
  std::printf("  epistemic privacy, unrestricted priors (Thm 3.11):         %s\n",
              unrestricted.verdict == Verdict::kSafe ? "allows" : "rejects");
  std::printf("  epistemic privacy, product priors (pipeline):              %s (%s)\n",
              product.verdict == Verdict::kSafe ? "allows" : "rejects",
              product.criterion.c_str());
  return 0;
}
