#include <gtest/gtest.h>

#include "criteria/pipeline.h"
#include "linalg/eigen.h"
#include "optimize/emptiness.h"
#include "optimize/positivstellensatz.h"
#include "optimize/sos.h"
#include "util/rng.h"
#include "worlds/monotone.h"

namespace epi {
namespace {

TEST(Sos, PerfectSquareIsDecomposed) {
  // (x - y)^2 = x^2 - 2xy + y^2.
  const std::size_t s = 2;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial y = Polynomial::variable(s, 1);
  Polynomial f = (x - y).pow(2);
  auto cert = sos_decompose(f);
  ASSERT_TRUE(cert.has_value());
  EXPECT_TRUE(is_psd(cert->gram, 1e-7));
  EXPECT_LT(cert->to_polynomial(s).max_coeff_difference(f), 1e-6);
}

TEST(Sos, SumOfTwoSquares) {
  // x^2 y^2 + (x + y)^2 * 0.5 + 2.
  const std::size_t s = 2;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial y = Polynomial::variable(s, 1);
  Polynomial f = (x * y).pow(2) + (x + y).pow(2) * 0.5 + Polynomial::constant(s, 2.0);
  EXPECT_TRUE(is_sos(f));
}

TEST(Sos, OddDegreeRejected) {
  const std::size_t s = 1;
  Polynomial x = Polynomial::variable(s, 0);
  EXPECT_FALSE(sos_decompose(x.pow(3)).has_value());
}

TEST(Sos, NegativePolynomialRejected) {
  const std::size_t s = 1;
  Polynomial f = Polynomial::constant(s, -1.0);
  SdpOptions opts;
  opts.max_iterations = 300;
  EXPECT_FALSE(sos_decompose(f, opts).has_value());
}

TEST(Sos, MotzkinIsNotSos) {
  // The classic witness that Sigma^2 is a strict subset of the nonnegative
  // polynomials (Section 6.2).
  SdpOptions opts;
  opts.max_iterations = 600;
  EXPECT_FALSE(is_sos(motzkin_polynomial(), opts));
}

TEST(Sos, RandomSumsOfSquaresAreRecognized) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t s = 2;
    // Random quadratic g, f = g^2 (+ h^2).
    Polynomial g(s);
    for (const Monomial& m : monomials_up_to_degree(s, 1)) {
      g.add_term(m, 2.0 * rng.next_double() - 1.0);
    }
    Polynomial h(s);
    for (const Monomial& m : monomials_up_to_degree(s, 1)) {
      h.add_term(m, 2.0 * rng.next_double() - 1.0);
    }
    Polynomial f = g * g + h * h;
    EXPECT_TRUE(is_sos(f)) << "trial " << trial;
  }
}

TEST(BoxCertificate, CertifiesXTimesOneMinusX) {
  // f = x(1-x) >= 0 on [0,1]: sigma0 = 0, multiplier = 1.
  const std::size_t s = 1;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial f = x - x * x;
  auto cert = prove_nonneg_on_box(f, 2);
  ASSERT_TRUE(cert.has_value());
  EXPECT_LT(cert->to_polynomial(s).max_coeff_difference(f), 1e-6);
  EXPECT_TRUE(is_psd(cert->sigma0.gram, 1e-7));
  for (const auto& mult : cert->multipliers) {
    EXPECT_TRUE(is_psd(mult.gram, 1e-7));
  }
}

TEST(BoxCertificate, CertifiesShiftedSquarePlusBox) {
  // f = (x - y)^2 + 3 x(1-x) + y(1-y), nonnegative on the unit box.
  const std::size_t s = 2;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial y = Polynomial::variable(s, 1);
  Polynomial f = (x - y).pow(2) + (x - x * x) * 3.0 + (y - y * y);
  auto cert = prove_nonneg_on_box(f, 2);
  ASSERT_TRUE(cert.has_value());
  EXPECT_LT(cert->to_polynomial(s).max_coeff_difference(f), 1e-6);
}

TEST(BoxCertificate, RejectsNegativeSpot) {
  // f = 0.1 - x is negative on part of [0,1]; no certificate can exist.
  const std::size_t s = 1;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial f = Polynomial::constant(s, 0.1) - x;
  SdpOptions opts;
  opts.max_iterations = 500;
  EXPECT_FALSE(prove_nonneg_on_box(f, 2, opts).has_value());
}

TEST(SosProductSafety, IndependentPairIsImmediatelySafe) {
  const unsigned n = 2;
  WorldSet a(n), b(n);
  for (World w = 0; w < 4; ++w) {
    if (world_bit(w, 0)) a.insert(w);
    if (world_bit(w, 1)) b.insert(w);
  }
  EXPECT_EQ(sos_product_safety(a, b), Verdict::kSafe);
}

TEST(SosProductSafety, CertifiesMonotonePairAtN2) {
  // A up-set, B down-set: safe by Corollary 5.5; the SOS layer should find
  // an independent analytic proof.
  const unsigned n = 2;
  WorldSet a = up_closure(WorldSet(n, {0b11}));
  WorldSet b = down_closure(WorldSet(n, {0b01}));
  EXPECT_EQ(sos_product_safety(a, b), Verdict::kSafe);
}

TEST(SosProductSafety, PaperExampleX1Bar) {
  // The paper's example after Theorem 5.7: A = X1, B = X1-bar ∪ X2 is safe
  // but not independent; the SOS certificate proves it.
  const unsigned n = 2;
  WorldSet x1(n), x2(n);
  for (World w = 0; w < 4; ++w) {
    if (world_bit(w, 0)) x1.insert(w);
    if (world_bit(w, 1)) x2.insert(w);
  }
  WorldSet b = (~x1) | x2;
  EXPECT_EQ(sos_product_safety(x1, b), Verdict::kSafe);
}

TEST(SosProductSafety, UnsafePairIsNotCertified) {
  // A = B = {11}: clearly unsafe; no certificate may be produced.
  const unsigned n = 2;
  WorldSet a(n, {3});
  SdpOptions opts;
  opts.max_iterations = 400;
  EXPECT_EQ(sos_product_safety(a, a, 0, opts), Verdict::kUnknown);
}

TEST(FullDecision, SosStageCertifiesRemark512) {
  // The Remark 5.12 pair defeats every combinatorial criterion yet is safe;
  // with the SOS stage enabled the full decision certifies it.
  const unsigned n = 3;
  WorldSet a = WorldSet::from_strings(n, {"011", "100", "110", "111"});
  WorldSet b = WorldSet::from_strings(n, {"010", "101", "110", "111"});
  SdpOptions sdp;
  sdp.max_iterations = 8000;
  // sos_degree 0 = auto: the margin has degree 4 and certifies at degree 4.
  const FullDecision d = decide_product_safety_complete(
      a, b, AscentOptions{}, /*enable_sos=*/true, /*sos_degree=*/0, sdp);
  EXPECT_EQ(d.verdict, Verdict::kSafe);
  EXPECT_EQ(d.method, "sos-certificate");
  EXPECT_TRUE(d.certified);
}

}  // namespace
}  // namespace epi
