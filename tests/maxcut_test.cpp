#include <gtest/gtest.h>

#include "maxcut/graph.h"
#include "maxcut/maxcut.h"
#include "maxcut/reduction.h"

namespace epi {
namespace {

TEST(Graph, Construction) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 4), std::out_of_range);
}

TEST(Graph, CutValue) {
  Graph g = Graph::cycle(4);
  EXPECT_EQ(g.cut_value({false, true, false, true}), 4u);
  EXPECT_EQ(g.cut_value({false, false, true, true}), 2u);
  EXPECT_EQ(g.cut_value({false, false, false, false}), 0u);
}

TEST(MaxCut, ExactOnKnownGraphs) {
  // Even cycle: cut = n; odd cycle: n - 1; K4: 4.
  EXPECT_EQ(max_cut_exact(Graph::cycle(6)).value, 6u);
  EXPECT_EQ(max_cut_exact(Graph::cycle(5)).value, 4u);
  EXPECT_EQ(max_cut_exact(Graph::complete(4)).value, 4u);
  EXPECT_EQ(max_cut_exact(Graph::complete(5)).value, 6u);
}

TEST(MaxCut, ExactWitnessAttainsValue) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = Graph::random(8, 0.5, rng);
    CutResult r = max_cut_exact(g);
    EXPECT_EQ(g.cut_value(r.side), r.value);
  }
}

TEST(MaxCut, LocalSearchNeverBeatsExact) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = Graph::random(9, 0.4, rng);
    CutResult exact = max_cut_exact(g);
    CutResult local = max_cut_local_search(g, rng);
    EXPECT_LE(local.value, exact.value);
    EXPECT_EQ(g.cut_value(local.side), local.value);
  }
}

TEST(MaxCut, BranchBoundMatchesEnumeration) {
  Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    Graph g = Graph::random(10, 0.2 + 0.06 * trial, rng);
    const CutResult exhaustive = max_cut_exact(g);
    const CutResult bnb = max_cut_branch_bound(g);
    EXPECT_EQ(bnb.value, exhaustive.value) << "trial " << trial;
    EXPECT_EQ(g.cut_value(bnb.side), bnb.value);
  }
}

TEST(MaxCut, BranchBoundOnKnownGraphs) {
  EXPECT_EQ(max_cut_branch_bound(Graph::cycle(9)).value, 8u);
  EXPECT_EQ(max_cut_branch_bound(Graph::complete(6)).value, 9u);
}

TEST(MaxCut, BranchBoundHandlesLargerSparseGraphs) {
  // Beyond comfortable enumeration range: just verify self-consistency and
  // that it beats (or ties) local search.
  Rng rng(9);
  Graph g = Graph::random(30, 0.12, rng);
  const CutResult bnb = max_cut_branch_bound(g);
  EXPECT_EQ(g.cut_value(bnb.side), bnb.value);
  const CutResult local = max_cut_local_search(g, rng, 8);
  EXPECT_GE(bnb.value, local.value);
}

TEST(Reduction, FamilyMembershipMatchesCuts) {
  Rng rng(7);
  Graph g = Graph::random(5, 0.6, rng);
  const CutResult best = max_cut_exact(g);
  const MaxCutReduction r = reduce_maxcut_to_safety(g, best.value);
  // The optimal cut yields a member of Pi_{G,k}: all constraints hold and
  // the safety gap is positive.
  Distribution witness = r.distribution_for_cut(g, best.side);
  for (const Polynomial& alpha : r.family.inequalities) {
    EXPECT_GE(alpha.eval(witness.weights()), -1e-9);
  }
  EXPECT_GT(witness.safety_gap(r.a, r.b), 0.1);
}

TEST(Reduction, SubOptimalCutViolatesCutConstraint) {
  Graph g = Graph::cycle(5);  // maxcut = 4
  const MaxCutReduction r = reduce_maxcut_to_safety(g, 4);
  // A cut of value 2 must violate at least one constraint.
  Distribution bad = r.distribution_for_cut(g, {false, false, true, true, false});
  bool violated = false;
  for (const Polynomial& alpha : r.family.inequalities) {
    if (alpha.eval(bad.weights()) < -1e-9) violated = true;
  }
  EXPECT_TRUE(violated);
}

TEST(Reduction, EmptinessEquivalentToMaxCutBound) {
  // Safe_{Pi_{G,k}}(A,B) <=> maxcut(G) < k, across all k, on small graphs.
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = Graph::random(5, 0.5, rng);
    const std::size_t best = max_cut_exact(g).value;
    for (std::size_t k = 0; k <= g.edge_count() + 1; ++k) {
      const MaxCutReduction r = reduce_maxcut_to_safety(g, k);
      EXPECT_EQ(r.nonempty_exact(g), best >= k) << "k=" << k;
    }
  }
}

TEST(Reduction, RelaxAndRoundFindsWitnessOnEasyInstances) {
  // The continuous relaxation cannot meet the binary equality constraints
  // exactly, so we round its best iterate to a cut (the standard
  // relax-and-round use of the Section 6 machinery) and check the cut
  // reaches the bound.
  Graph g = Graph::cycle(4);  // maxcut = 4
  const MaxCutReduction r = reduce_maxcut_to_safety(g, 1);
  EmptinessOptions opts;
  opts.multistarts = 8;
  opts.iterations = 800;
  const EmptinessSearchResult search =
      search_violating_distribution(r.family, r.a, r.b, opts);
  ASSERT_FALSE(search.best_iterate.empty());
  const std::vector<bool> side = r.cut_from_weights(g, search.best_iterate);
  ASSERT_GE(g.cut_value(side), r.cut_bound);
  // The rounded cut yields an exact family member violating safety.
  Distribution witness = r.distribution_for_cut(g, side);
  for (const Polynomial& alpha : r.family.inequalities) {
    EXPECT_GE(alpha.eval(witness.weights()), -1e-9);
  }
  EXPECT_GT(witness.safety_gap(r.a, r.b), 0.0);
}

}  // namespace
}  // namespace epi
