// Tests for the marginal-bounds prior family.
#include <gtest/gtest.h>

#include "probabilistic/marginal_family.h"
#include "probabilistic/product.h"

namespace epi {
namespace {

TEST(MarginalFamily, MarginalsComputedCorrectly) {
  // P(01) = 0.3, P(10) = 0.7 (string order bit0 first): marginal of bit0 =
  // P(10)... careful: world "10" = bit0 set.
  std::vector<double> w(4, 0.0);
  w[world_from_string("10")] = 0.7;
  w[world_from_string("01")] = 0.3;
  Distribution p(2, w);
  const auto m = marginals(p);
  EXPECT_NEAR(m[0], 0.7, 1e-12);
  EXPECT_NEAR(m[1], 0.3, 1e-12);
}

TEST(MarginalFamily, MembershipTest) {
  Distribution p = Distribution::uniform(2);  // marginals (0.5, 0.5)
  EXPECT_TRUE(satisfies_marginal_bounds(p, {0.4, 0.4}, {0.6, 0.6}));
  EXPECT_FALSE(satisfies_marginal_bounds(p, {0.6, 0.0}, {1.0, 1.0}));
  EXPECT_THROW(satisfies_marginal_bounds(p, {0.4}, {0.6, 0.6}),
               std::invalid_argument);
}

TEST(MarginalFamily, AlgebraicConstraintsMatchDirectMarginals) {
  const unsigned n = 3;
  std::vector<double> lo(n, 0.2), hi(n, 0.8);
  const AlgebraicFamily family = marginal_bounds_family(n, lo, hi);
  EXPECT_EQ(family.inequalities.size(), 2u * n);
  Rng rng(3);
  for (int t = 0; t < 30; ++t) {
    Distribution p = Distribution::random(n, rng);
    bool algebraic_ok = true;
    for (const Polynomial& alpha : family.inequalities) {
      if (alpha.eval(p.weights()) < -1e-12) algebraic_ok = false;
    }
    EXPECT_EQ(algebraic_ok, satisfies_marginal_bounds(p, lo, hi)) << t;
  }
  EXPECT_THROW(marginal_bounds_family(n, {0.5, 0.2, 0.1}, {0.4, 0.8, 0.9}),
               std::invalid_argument);
}

TEST(MarginalFamily, TightBoundsBlockTheTwoPointAttack) {
  // Theorem 3.11's two-point witness needs extreme priors. With marginals
  // pinned near 1/2 the implication disclosure of Section 1.1 stays safe
  // even though it is unsafe under unrestricted priors... A = r1-worlds,
  // B = A itself: the gap P[AB] - P[A]P[B] = P[A](1-P[A]) is forced to
  // ~1/4 > 0 — still unsafe. Use a genuinely marginal-sensitive pair:
  // A = {11}, B = {01, 11} at pinned marginals: P[A|B] vs P[A] can still
  // differ, so the search should find a witness.
  const unsigned n = 2;
  WorldSet a(n, {3});
  WorldSet b(n, {2, 3});
  const AlgebraicFamily family =
      marginal_bounds_family(n, {0.45, 0.45}, {0.55, 0.55});
  EmptinessOptions opts;
  opts.multistarts = 10;
  const EmptinessSearchResult r = search_violating_distribution(family, a, b, opts);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(satisfies_marginal_bounds(*r.witness, {0.45, 0.45}, {0.55, 0.55},
                                        1e-4));
  EXPECT_GT(r.witness->safety_gap(a, b), 0.0);
}

TEST(MarginalFamily, DegenerateBoundsPinTheMarginal) {
  // lo = hi pins the marginal exactly; the found witnesses respect it.
  const unsigned n = 2;
  WorldSet a(n, {3});
  const AlgebraicFamily family = marginal_bounds_family(n, {0.3, 0.5}, {0.3, 0.5});
  EmptinessOptions opts;
  const EmptinessSearchResult r = search_violating_distribution(family, a, a, opts);
  if (r.found) {
    const auto m = marginals(*r.witness);
    EXPECT_NEAR(m[0], 0.3, 1e-3);
    EXPECT_NEAR(m[1], 0.5, 1e-3);
  }
}

}  // namespace
}  // namespace epi
