#!/bin/sh
# Pins audit_cli's exit-code contract (registered as CTest `audit_cli_exitcodes`):
#   0  success, including --help
#   1  runtime failures (unreadable file, malformed scenario)
#   2  command-line errors (unknown flag, missing flag value)
# Usage: audit_cli_exitcodes.sh <path-to-audit_cli>
set -u

cli="${1:?usage: audit_cli_exitcodes.sh <audit_cli>}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

expect_exit() {
  want="$1"
  got="$2"
  what="$3"
  [ "$got" -eq "$want" ] || fail "$what: expected exit $want, got $got"
}

# --help: exit 0, usage on stdout, nothing on stderr.
"$cli" --help > "$tmp/out" 2> "$tmp/err"
expect_exit 0 $? "--help"
grep -q "^usage: audit_cli" "$tmp/out" || fail "--help did not print usage on stdout"
[ -s "$tmp/err" ] && fail "--help wrote to stderr"

# Unknown flag: exit 2, error + usage on stderr.
"$cli" --no-such-flag > "$tmp/out" 2> "$tmp/err"
expect_exit 2 $? "unknown flag"
grep -q "unknown flag '--no-such-flag'" "$tmp/err" || fail "unknown flag not named on stderr"
grep -q "^usage: audit_cli" "$tmp/err" || fail "unknown flag did not print usage on stderr"

# Missing flag value: exit 2.
"$cli" --threads > /dev/null 2> "$tmp/err"
expect_exit 2 $? "--threads without a count"
grep -q -- "--threads needs a count" "$tmp/err" || fail "--threads error not reported"

# Unreadable scenario file: a runtime failure, exit 1.
"$cli" "$tmp/does-not-exist.scn" > /dev/null 2> "$tmp/err"
expect_exit 1 $? "missing scenario file"
grep -q "cannot open scenario file" "$tmp/err" || fail "missing file not reported"

# Malformed scenario: exit 1, offending line named.
printf 'record a\nfrobnicate b\n' > "$tmp/bad.scn"
"$cli" "$tmp/bad.scn" > /dev/null 2> "$tmp/err"
expect_exit 1 $? "malformed scenario"
grep -q "line 2" "$tmp/err" || fail "malformed scenario line not named"

# The built-in demo runs clean.
"$cli" > "$tmp/out" 2> "$tmp/err"
expect_exit 0 $? "built-in demo"
grep -q "Audit query" "$tmp/out" || fail "demo produced no report"

echo "audit_cli exit codes OK"
