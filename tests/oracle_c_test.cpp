// Tests for the auditor's database knowledge C gating the interval
// machinery (the C in K = C (x) Sigma): intervals exist only from worlds the
// auditor considers possible, and richer C means stricter audits.
#include <gtest/gtest.h>

#include <memory>

#include "possibilistic/intervals.h"
#include "possibilistic/knowledge.h"
#include "possibilistic/rectangles.h"
#include "possibilistic/safe.h"

namespace epi {
namespace {

TEST(OracleC, IntervalsRequireWorldInC) {
  GridDomain g(4, 3);
  auto sigma = std::make_shared<RectangleSigma>(g);
  FiniteSet c = FiniteSet::singleton(g.size(), g.index(1, 1));
  IntervalOracle oracle(sigma, c);
  EXPECT_TRUE(oracle.interval(g.index(1, 1), g.index(3, 2)).has_value());
  EXPECT_FALSE(oracle.interval(g.index(2, 2), g.index(3, 2)).has_value());
}

TEST(OracleC, SmallerCIsMorePermissive) {
  // Remark 3.2 in the C dimension: shrinking C (more auditor knowledge)
  // discards knowledge worlds, so every disclosure safe under a larger C
  // stays safe under a smaller one.
  GridDomain g(5, 4);
  auto sigma = std::make_shared<RectangleSigma>(g);
  Rng rng(3);
  for (int t = 0; t < 40; ++t) {
    FiniteSet big_c = FiniteSet::random(g.size(), rng, 0.8);
    if (big_c.is_empty()) big_c.insert(0);
    FiniteSet small_c = big_c;
    // Drop roughly half of big C (keep at least one world).
    big_c.visit([&](std::size_t w) {
      if (rng.next_bool() && small_c.count() > 1) small_c.erase(w);
    });
    IntervalOracle big(sigma, big_c);
    IntervalOracle small(sigma, small_c);
    FiniteSet a = FiniteSet::random(g.size(), rng, 0.5);
    FiniteSet b = FiniteSet::random(g.size(), rng, 0.5);
    if (big.safe_minimal_intervals(a, b)) {
      EXPECT_TRUE(small.safe_minimal_intervals(a, b)) << "trial " << t;
    }
  }
}

TEST(OracleC, MatchesDefinitionWithRestrictedC) {
  GridDomain g(4, 3);
  auto sigma = std::make_shared<RectangleSigma>(g);
  Rng rng(5);
  for (int t = 0; t < 40; ++t) {
    FiniteSet c = FiniteSet::random(g.size(), rng, 0.4);
    if (c.is_empty()) c.insert(rng.next_below(g.size()));
    IntervalOracle oracle(sigma, c);
    auto k = SecondLevelKnowledge::product(c, sigma->enumerate());
    FiniteSet a = FiniteSet::random(g.size(), rng, 0.5);
    FiniteSet b = FiniteSet::random(g.size(), rng, 0.5);
    EXPECT_EQ(oracle.safe_minimal_intervals(a, b), safe_possibilistic(k, a, b))
        << "trial " << t << " C=" << c.to_string();
  }
}

TEST(OracleC, KnownWorldAudit) {
  // The auditor who reconstructed omega* from update logs uses C = {omega*}:
  // only that world's intervals matter (Figure 1's "assuming omega* =
  // omega_1" reading).
  GridDomain g(6, 4);
  auto sigma = std::make_shared<RectangleSigma>(g);
  const std::size_t actual = g.index(2, 2);
  IntervalOracle oracle(sigma, FiniteSet::singleton(g.size(), actual));
  FiniteSet a = ~g.rectangle(5, 3, 6, 4);  // sensitive: NOT in the corner
  // B containing the actual world and one complement world adjacent enough.
  FiniteSet b(g.size(), {actual, g.index(5, 3)});
  // Minimal intervals only from `actual`; the verdict is definite either way.
  const bool safe = oracle.safe_minimal_intervals(a, b);
  auto k = SecondLevelKnowledge::product(FiniteSet::singleton(g.size(), actual),
                                         sigma->enumerate());
  EXPECT_EQ(safe, safe_possibilistic(k, a, b));
}

}  // namespace
}  // namespace epi
