// Tests for the concurrent audit service (src/service/): Prop. 3.10 parity
// between streamed sessions and the offline auditor, verdict-cache safety
// (collisions, invalidation, LRU), admission control and backpressure,
// deadlines and cancellation, graceful shutdown, and the wire protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "engine/criterion_stage.h"
#include "obs/metrics.h"
#include "service/audit_service.h"
#include "service/protocol.h"
#include "service/session.h"
#include "service/verdict_cache.h"
#include "util/status.h"
#include "worlds/dense_bits.h"
#include "worlds/world_set.h"

namespace epi {
namespace service {
namespace {

RecordUniverse hospital_universe() {
  RecordUniverse u;
  u.add("bob_hiv");          // coordinate 0
  u.add("bob_transfusion");  // coordinate 1
  u.add("bob_hepatitis");    // coordinate 2
  return u;
}

constexpr World kHivAndTransfusion = 0b011;

ServiceOptions small_service_options() {
  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 32;
  options.cache_capacity = 64;
  options.cache_shards = 4;
  return options;
}

std::unique_ptr<AuditService> make_service(
    ServiceOptions options = small_service_options(),
    PriorAssumption prior = PriorAssumption::kProduct) {
  std::unique_ptr<AuditService> service;
  const Status s =
      AuditService::try_create(hospital_universe(), kHivAndTransfusion,
                               "bob_hiv", prior, std::move(options), &service);
  EXPECT_TRUE(s.ok()) << s.to_string();
  return service;
}

void expect_same_finding(const AuditFinding& got, const AuditFinding& want) {
  EXPECT_EQ(got.verdict, want.verdict);
  EXPECT_EQ(got.method, want.method);
  EXPECT_EQ(got.certified, want.certified);
  EXPECT_EQ(got.detail, want.detail);
  EXPECT_EQ(got.user, want.user);
  EXPECT_EQ(got.query_text, want.query_text);
  EXPECT_EQ(got.answer, want.answer);
}

// --- Prop. 3.10 / offline parity ------------------------------------------

struct Replay {
  std::string user;
  std::string query;
  bool answer;
};

const std::vector<Replay>& replay_log() {
  static const std::vector<Replay> log = {
      {"alice", "bob_hiv", true},
      {"alice", "bob_hiv -> bob_transfusion", true},
      {"cindy", "bob_hiv & bob_hepatitis", false},
      {"alice", "atmost(0, bob_hepatitis)", true},
      {"cindy", "bob_transfusion", true},
  };
  return log;
}

// Streaming k disclosures through per-user sessions must produce, at every
// step, exactly the verdicts the offline Auditor computes for the same log:
// per-disclosure findings match entry by entry, and the k-th cumulative
// finding equals the offline per-user conjunction Safe(A, B1 cap ... cap Bk)
// (Def. 3.9 / Prop. 3.10: acquiring B1, ..., Bk one at a time is acquiring
// their intersection).
TEST(ServiceParity, StreamedSessionsMatchOfflineAuditor) {
  for (const PriorAssumption prior :
       {PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
        PriorAssumption::kSubcubeKnowledge}) {
    std::unique_ptr<AuditService> service =
        make_service(small_service_options(), prior);
    ASSERT_NE(service, nullptr);

    std::vector<AuditResponse> responses;
    for (const Replay& r : replay_log()) {
      AuditRequest request;
      request.user = r.user;
      request.query_text = r.query;
      request.answer = r.answer;  // replayed-log mode
      responses.push_back(service->process(std::move(request)));
      ASSERT_TRUE(responses.back().status.ok())
          << responses.back().status.to_string();
    }

    AuditorOptions offline_options;
    offline_options.threads = 1;
    Auditor auditor(hospital_universe(), prior, offline_options);
    AuditLog log;
    for (const Replay& r : replay_log()) {
      log.record_with_answer(r.user, r.query, r.answer);
    }
    const AuditReport offline = auditor.audit(log, "bob_hiv");

    ASSERT_EQ(responses.size(), offline.per_disclosure.size());
    for (std::size_t i = 0; i < responses.size(); ++i) {
      expect_same_finding(responses[i].disclosure, offline.per_disclosure[i]);
    }

    // The last response per user carries that user's full conjunction.
    ASSERT_EQ(offline.per_user_cumulative.size(), 2u);
    expect_same_finding(responses[3].cumulative,
                        offline.per_user_cumulative[0]);  // alice, k = 3
    expect_same_finding(responses[4].cumulative,
                        offline.per_user_cumulative[1]);  // cindy, k = 2
    EXPECT_EQ(responses[3].sequence, 3u);
    EXPECT_EQ(responses[4].sequence, 2u);
  }
}

// Same log, concurrent submission: per-user verdict sequences must not
// depend on scheduling (requests for one user serialize on the session).
TEST(ServiceParity, ConcurrentUsersMatchOfflineAuditor) {
  std::unique_ptr<AuditService> service = make_service();
  ASSERT_NE(service, nullptr);

  auto stream_user = [&](const std::string& user) {
    std::vector<AuditResponse> out;
    for (const Replay& r : replay_log()) {
      if (r.user != user) continue;
      AuditRequest request;
      request.user = user;
      request.query_text = r.query;
      request.answer = r.answer;
      out.push_back(service->process(request));
    }
    return out;
  };
  auto alice_future =
      std::async(std::launch::async, stream_user, std::string("alice"));
  const std::vector<AuditResponse> cindy = stream_user("cindy");
  const std::vector<AuditResponse> alice = alice_future.get();

  AuditorOptions offline_options;
  offline_options.threads = 1;
  Auditor auditor(hospital_universe(), PriorAssumption::kProduct,
                  offline_options);
  AuditLog log;
  for (const Replay& r : replay_log()) {
    log.record_with_answer(r.user, r.query, r.answer);
  }
  const AuditReport offline = auditor.audit(log, "bob_hiv");

  ASSERT_EQ(alice.size(), 3u);
  ASSERT_EQ(cindy.size(), 2u);
  EXPECT_EQ(alice.back().cumulative.verdict,
            offline.per_user_cumulative[0].verdict);
  EXPECT_EQ(alice.back().cumulative.method,
            offline.per_user_cumulative[0].method);
  EXPECT_EQ(cindy.back().cumulative.verdict,
            offline.per_user_cumulative[1].verdict);
  EXPECT_EQ(cindy.back().cumulative.method,
            offline.per_user_cumulative[1].method);
}

// Without a replayed answer the service evaluates against its own database.
TEST(Service, EvaluatesQueriesAgainstDatabaseState) {
  std::unique_ptr<AuditService> service = make_service();
  ASSERT_NE(service, nullptr);
  AuditRequest request;
  request.user = "alice";
  request.query_text = "bob_hiv & bob_transfusion";
  const AuditResponse response = service->process(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status.to_string();
  EXPECT_TRUE(response.answer);  // both records are in kHivAndTransfusion

  AuditRequest negative;
  negative.user = "alice";
  negative.query_text = "bob_hepatitis";
  EXPECT_FALSE(service->process(std::move(negative)).answer);
}

TEST(Service, MalformedQueryReturnsInvalidArgument) {
  std::unique_ptr<AuditService> service = make_service();
  ASSERT_NE(service, nullptr);
  AuditRequest request;
  request.user = "alice";
  request.query_text = "bob_hiv &&& nope";
  const AuditResponse response = service->process(std::move(request));
  EXPECT_EQ(response.status.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(service->metrics_snapshot().counter("service.requests.parse_errors"),
            1);
}

// --- Construction / reload validation -------------------------------------

TEST(Service, TryCreateRejectsBadInputs) {
  std::unique_ptr<AuditService> service;
  ServiceOptions options = small_service_options();

  Status s = AuditService::try_create(RecordUniverse{}, 0, "x",
                                      PriorAssumption::kProduct, options,
                                      &service);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);

  s = AuditService::try_create(hospital_universe(), /*initial_state=*/8,
                               "bob_hiv", PriorAssumption::kProduct, options,
                               &service);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);

  s = AuditService::try_create(hospital_universe(), 0, "bob_hiv &&& nope",
                               PriorAssumption::kProduct, options, &service);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);

  options.workers = 0;
  s = AuditService::try_create(hospital_universe(), 0, "bob_hiv",
                               PriorAssumption::kProduct, options, &service);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);

  EXPECT_EQ(service, nullptr);  // untouched throughout
}

TEST(Service, ReloadResetsSessionsAndInvalidatesCache) {
  std::unique_ptr<AuditService> service = make_service();
  ASSERT_NE(service, nullptr);

  AuditRequest request;
  request.user = "alice";
  request.query_text = "bob_hiv";
  request.answer = true;
  AuditResponse first = service->process(request);
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.sequence, 1u);
  EXPECT_FALSE(first.disclosure_cached);

  AuditResponse repeat = service->process(request);
  EXPECT_TRUE(repeat.disclosure_cached);
  EXPECT_EQ(repeat.sequence, 2u);

  const Status s = service->reload(hospital_universe(), kHivAndTransfusion,
                                   "bob_hiv", PriorAssumption::kProduct);
  ASSERT_TRUE(s.ok()) << s.to_string();

  // Fresh session (sequence restarts) and cold cache (engine re-decides).
  AuditResponse after = service->process(request);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.sequence, 1u);
  EXPECT_FALSE(after.disclosure_cached);
  const obs::MetricsSnapshot metrics = service->metrics_snapshot();
  EXPECT_EQ(metrics.counter("service.cache.invalidations"), 1);
  EXPECT_EQ(metrics.counter("service.reloads"), 1);

  EXPECT_EQ(service
                ->reload(hospital_universe(), /*initial_state=*/99, "bob_hiv",
                         PriorAssumption::kProduct)
                .code(),
            Status::Code::kInvalidArgument);
}

// A reset_session (wire-exposed) racing an in-flight request for the same
// user must not destroy the Session a worker is using: the worker holds a
// shared_ptr, so the reset only removes the map entry and the next request
// starts fresh.
TEST(Service, ResetSessionDuringRequestIsSafe) {
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> entered{0};
  ServiceOptions options = small_service_options();
  options.workers = 1;
  options.test_hook_pre_absorb = [&] {
    if (entered.fetch_add(1) == 0) released.wait();
  };
  std::unique_ptr<AuditService> service = make_service(std::move(options));
  ASSERT_NE(service, nullptr);

  AuditRequest request;
  request.user = "alice";
  request.query_text = "bob_hiv";
  request.answer = true;
  Ticket ticket = service->submit(request);
  while (entered.load() == 0) std::this_thread::yield();
  // The worker now holds alice's session (post-decide, pre-absorb).
  ASSERT_TRUE(service->reset_session("alice").ok());
  release.set_value();

  const AuditResponse first = ticket.response.get();
  ASSERT_TRUE(first.status.ok()) << first.status.to_string();
  EXPECT_EQ(first.sequence, 1u);
  // The reset took effect for subsequent requests: a fresh session.
  EXPECT_EQ(service->process(request).sequence, 1u);
}

// A reload racing an in-flight request must not let a session built for the
// old universe serve requests under the new scenario (absorb() would mix
// WorldSets from different universes).
TEST(Service, ReloadDuringRequestDoesNotLeakStaleSession) {
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> entered{0};
  ServiceOptions options = small_service_options();
  options.workers = 1;
  options.test_hook_pre_decide = [&] {
    if (entered.fetch_add(1) == 0) released.wait();
  };
  std::unique_ptr<AuditService> service = make_service(std::move(options));
  ASSERT_NE(service, nullptr);

  AuditRequest request;
  request.user = "alice";
  request.query_text = "bob_hiv";
  request.answer = true;
  Ticket stale = service->submit(request);
  while (entered.load() == 0) std::this_thread::yield();

  // Swap to a *larger* universe while the worker is parked before
  // session_for: the worker will re-insert an old-universe session after
  // reload cleared the map — exactly the race under test.
  RecordUniverse bigger = hospital_universe();
  bigger.add("bob_diabetes");  // coordinate 3
  ASSERT_TRUE(service
                  ->reload(bigger, kHivAndTransfusion, "bob_hiv",
                           PriorAssumption::kProduct)
                  .ok());
  release.set_value();

  // The stale request completes coherently against the scenario it started
  // with (reload's documented semantics).
  const AuditResponse old_response = stale.response.get();
  ASSERT_TRUE(old_response.status.ok()) << old_response.status.to_string();
  EXPECT_EQ(old_response.sequence, 1u);

  // A request under the new scenario must get a session built for the new
  // universe (sequence restarts; no size-mismatch intersection).
  AuditRequest fresh;
  fresh.user = "alice";
  fresh.query_text = "bob_diabetes";
  fresh.answer = true;
  const AuditResponse new_response = service->process(fresh);
  ASSERT_TRUE(new_response.status.ok()) << new_response.status.to_string();
  EXPECT_EQ(new_response.sequence, 1u);
  EXPECT_EQ(service->process(fresh).sequence, 2u);
}

// In replayed-log mode the log says the user saw the answer, so a deadline
// that expires after the disclosure verdict must still absorb it — the
// accumulated-knowledge set may never under-count what the user knows.
TEST(Service, ReplayModeAbsorbsDisclosureOnDeadlineExpiry) {
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> entered{0};
  ServiceOptions options = small_service_options();
  options.workers = 1;
  options.test_hook_pre_absorb = [&] {
    if (entered.fetch_add(1) == 0) released.wait();
  };
  std::unique_ptr<AuditService> service = make_service(std::move(options));
  ASSERT_NE(service, nullptr);

  // Wide enough that the worker reliably reaches the pre-absorb hook (where
  // it parks) before the deadline can expire at an earlier checkpoint.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(250);
  AuditRequest request;
  request.user = "alice";
  request.query_text = "bob_hiv";
  request.answer = true;  // replayed-log mode
  request.deadline = deadline;
  Ticket ticket = service->submit(request);
  while (entered.load() == 0) std::this_thread::yield();
  // Let the deadline lapse while the worker sits between the disclosure
  // verdict and the absorb checkpoint, then release it.
  std::this_thread::sleep_until(deadline + std::chrono::milliseconds(5));
  release.set_value();

  const AuditResponse expired = ticket.response.get();
  EXPECT_EQ(expired.status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(expired.sequence, 1u);  // absorbed despite the expiry

  // The next replayed disclosure continues the sequence: the expired one
  // counts toward alice's accumulated knowledge.
  AuditRequest next;
  next.user = "alice";
  next.query_text = "bob_transfusion";
  next.answer = true;
  const AuditResponse response = service->process(std::move(next));
  ASSERT_TRUE(response.status.ok()) << response.status.to_string();
  EXPECT_EQ(response.sequence, 2u);
}

TEST(Service, ResetSessionForgetsAccumulatedKnowledge) {
  std::unique_ptr<AuditService> service = make_service();
  ASSERT_NE(service, nullptr);
  AuditRequest request;
  request.user = "alice";
  request.query_text = "bob_hiv";
  request.answer = true;
  EXPECT_EQ(service->process(request).sequence, 1u);
  EXPECT_EQ(service->process(request).sequence, 2u);
  ASSERT_TRUE(service->reset_session("alice").ok());
  EXPECT_EQ(service->process(request).sequence, 1u);
  EXPECT_TRUE(service->reset_session("nobody").ok());
}

// --- Incremental session evaluation (DESIGN.md section 11) ----------------

// The on/off contract: with incremental_sessions disabled the service
// recomputes every cumulative verdict through the verdict cache; enabled, it
// delta-evaluates per-session state. Every response field the client can see
// must be byte-identical either way (cumulative_cached is the documented
// exception: the incremental path bypasses the cache).
TEST(ServiceIncremental, DisabledPathMatchesEnabledPath) {
  for (const PriorAssumption prior :
       {PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
        PriorAssumption::kSubcubeKnowledge}) {
    std::unique_ptr<AuditService> incremental =
        make_service(small_service_options(), prior);
    ServiceOptions recompute_options = small_service_options();
    recompute_options.incremental_sessions = false;
    std::unique_ptr<AuditService> recompute =
        make_service(std::move(recompute_options), prior);
    ASSERT_NE(incremental, nullptr);
    ASSERT_NE(recompute, nullptr);

    for (const Replay& r : replay_log()) {
      AuditRequest request;
      request.user = r.user;
      request.query_text = r.query;
      request.answer = r.answer;
      AuditRequest copy = request;
      const AuditResponse got = incremental->process(std::move(request));
      const AuditResponse want = recompute->process(std::move(copy));
      ASSERT_EQ(got.status.code(), want.status.code());
      EXPECT_EQ(got.sequence, want.sequence);
      EXPECT_EQ(got.denied, want.denied);
      expect_same_finding(got.disclosure, want.disclosure);
      expect_same_finding(got.cumulative, want.cumulative);
    }
  }
}

// The three serve tiers, driven one by one: a first disclosure evaluates, a
// repeat of known information serves the recorded verdict (S unchanged), and
// once a disclosure empties A cap S the monotone Safe verdict pins — every
// later verdict is served without touching the cascade.
TEST(ServiceIncremental, CountersTrackServeTiers) {
  std::unique_ptr<AuditService> service = make_service(
      small_service_options(), PriorAssumption::kSubcubeKnowledge);
  ASSERT_NE(service, nullptr);

  auto replayed = [&](const std::string& query) {
    AuditRequest request;
    request.user = "alice";
    request.query_text = query;
    request.answer = true;
    const AuditResponse response = service->process(std::move(request));
    EXPECT_TRUE(response.status.ok()) << response.status.to_string();
    return response;
  };

  replayed("bob_transfusion");  // first verdict: evaluated
  replayed("bob_transfusion");  // same knowledge again: S unchanged
  replayed("!bob_hiv");         // empties A cap S: evaluated, then pinned
  const AuditResponse pinned = replayed("bob_hepatitis");
  EXPECT_EQ(pinned.cumulative.verdict, Verdict::kSafe);

  const obs::MetricsSnapshot metrics = service->metrics_snapshot();
  EXPECT_EQ(metrics.counter("service.incremental.evaluated"), 2);
  EXPECT_EQ(metrics.counter("service.incremental.unchanged"), 1);
  EXPECT_EQ(metrics.counter("service.incremental.pinned"), 1);
}

// Replayed-log disclosures are parsed once per distinct (query, answer):
// re-sends hit the compiled map and skip try_parse_query entirely. Parse
// errors are never cached — each malformed send fails afresh.
TEST(ServiceIncremental, ReplayedDisclosuresParseOnce) {
  std::unique_ptr<AuditService> service = make_service();
  ASSERT_NE(service, nullptr);

  AuditRequest request;
  request.user = "alice";
  request.query_text = "bob_hiv & bob_transfusion";
  request.answer = true;
  for (int i = 0; i < 3; ++i) {
    AuditRequest copy = request;
    ASSERT_TRUE(service->process(std::move(copy)).status.ok());
  }
  EXPECT_EQ(
      service->metrics_snapshot().counter("service.requests.parse_skips"), 2);

  AuditRequest malformed;
  malformed.user = "alice";
  malformed.query_text = "bob_hiv &";
  malformed.answer = true;
  for (int i = 0; i < 2; ++i) {
    AuditRequest copy = malformed;
    EXPECT_EQ(service->process(std::move(copy)).status.code(),
              Status::Code::kInvalidArgument);
  }
  const obs::MetricsSnapshot metrics = service->metrics_snapshot();
  EXPECT_EQ(metrics.counter("service.requests.parse_errors"), 2);
  EXPECT_EQ(metrics.counter("service.requests.parse_skips"), 2);
}

// reset_session drops the per-session incremental state with the session:
// a pinned verdict must not survive into the fresh session.
TEST(ServiceIncremental, ResetSessionDropsPinnedState) {
  std::unique_ptr<AuditService> service = make_service(
      small_service_options(), PriorAssumption::kSubcubeKnowledge);
  ASSERT_NE(service, nullptr);

  auto replayed = [&](const std::string& query) {
    AuditRequest request;
    request.user = "alice";
    request.query_text = query;
    request.answer = true;
    return service->process(std::move(request));
  };

  ASSERT_TRUE(replayed("!bob_hiv").status.ok());  // A cap S empty: pinned
  ASSERT_EQ(replayed("bob_hiv").cumulative.verdict, Verdict::kSafe);
  ASSERT_EQ(service->metrics_snapshot().counter("service.incremental.pinned"),
            1);

  ASSERT_TRUE(service->reset_session("alice").ok());

  // Fresh session: "bob_hiv" alone makes the accumulated set A itself,
  // which is unsafe — a leaked pin would have served Safe.
  const AuditResponse fresh = replayed("bob_hiv");
  ASSERT_TRUE(fresh.status.ok()) << fresh.status.to_string();
  EXPECT_EQ(fresh.sequence, 1u);
  EXPECT_EQ(fresh.cumulative.verdict, Verdict::kUnsafe);
  EXPECT_EQ(service->metrics_snapshot().counter("service.incremental.pinned"),
            1);
}

// --- Deadlines, cancellation, backpressure, shutdown ----------------------

TEST(Service, ExpiredDeadlineShortCircuits) {
  std::unique_ptr<AuditService> service = make_service();
  ASSERT_NE(service, nullptr);
  AuditRequest request;
  request.user = "alice";
  request.query_text = "bob_hiv";
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  const AuditResponse response = service->process(std::move(request));
  EXPECT_EQ(response.status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(
      service->metrics_snapshot().counter("service.requests.deadline_expired"),
      1);
}

TEST(Service, CancelledTicketResolvesWithCancelled) {
  // One worker parked in the test hook; cancel the request it holds.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> entered{false};
  ServiceOptions options = small_service_options();
  options.workers = 1;
  options.test_hook_pre_decide = [&] {
    entered.store(true);
    released.wait();
  };
  std::unique_ptr<AuditService> service = make_service(std::move(options));
  ASSERT_NE(service, nullptr);

  AuditRequest request;
  request.user = "alice";
  request.query_text = "bob_hiv";
  Ticket ticket = service->submit(std::move(request));
  while (!entered.load()) std::this_thread::yield();
  ticket.cancel();
  release.set_value();
  const AuditResponse response = ticket.response.get();
  EXPECT_EQ(response.status.code(), Status::Code::kCancelled);
  EXPECT_EQ(service->metrics_snapshot().counter("service.requests.cancelled"),
            1);
}

TEST(Service, FullQueueRejectsWithResourceExhausted) {
  // One worker parked in the test hook + capacity-1 queue: the first request
  // occupies the worker, the second fills the queue, the third must bounce.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> entered{false};
  ServiceOptions options = small_service_options();
  options.workers = 1;
  options.queue_capacity = 1;
  options.test_hook_pre_decide = [&] {
    entered.store(true);
    released.wait();
  };
  std::unique_ptr<AuditService> service = make_service(std::move(options));
  ASSERT_NE(service, nullptr);

  AuditRequest request;
  request.user = "alice";
  request.query_text = "bob_hiv";
  request.answer = true;
  Ticket first = service->submit(request);
  while (!entered.load()) std::this_thread::yield();
  Ticket second = service->submit(request);
  EXPECT_EQ(service->queue_depth(), 1u);

  Ticket third = service->submit(request);
  const AuditResponse rejected = third.response.get();  // resolved immediately
  EXPECT_EQ(rejected.status.code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(service->metrics_snapshot().counter("service.requests.rejected"),
            1);

  release.set_value();
  EXPECT_TRUE(first.response.get().status.ok());
  EXPECT_TRUE(second.response.get().status.ok());
}

TEST(Service, ProcessManyMatchesSequentialProcess) {
  // Batch admission is a queueing optimization only: responses[i] must carry
  // the verdicts a sequential submit loop would produce for the same stream
  // (same-user requests keep their submission order through the queue).
  std::vector<AuditRequest> requests;
  for (const Replay& entry : replay_log()) {
    AuditRequest request;
    request.user = entry.user;
    request.query_text = entry.query;
    request.answer = entry.answer;
    requests.push_back(std::move(request));
  }

  std::unique_ptr<AuditService> batched = make_service();
  ASSERT_NE(batched, nullptr);
  const std::vector<AuditResponse> batch = batched->process_many(requests);

  std::unique_ptr<AuditService> sequential = make_service();
  ASSERT_NE(sequential, nullptr);
  ASSERT_EQ(batch.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "request[" << i << "]");
    const AuditResponse want = sequential->process(requests[i]);
    ASSERT_TRUE(batch[i].status.ok()) << batch[i].status.to_string();
    ASSERT_TRUE(want.status.ok()) << want.status.to_string();
    EXPECT_EQ(batch[i].answer, want.answer);
    EXPECT_EQ(batch[i].sequence, want.sequence);
    expect_same_finding(batch[i].disclosure, want.disclosure);
    expect_same_finding(batch[i].cumulative, want.cumulative);
  }
}

TEST(Service, SubmitManyIsAllOrNothing) {
  // A batch that cannot fit entirely must admit nothing: every ticket
  // resolves ResourceExhausted and the queue stays available for smaller
  // submissions (no partially-admitted sweep).
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> entered{false};
  ServiceOptions options = small_service_options();
  options.workers = 1;
  options.queue_capacity = 2;
  options.test_hook_pre_decide = [&] {
    entered.store(true);
    released.wait();
  };
  std::unique_ptr<AuditService> service = make_service(std::move(options));
  ASSERT_NE(service, nullptr);

  AuditRequest request;
  request.user = "alice";
  request.query_text = "bob_hiv";
  request.answer = true;
  Ticket parked = service->submit(request);
  while (!entered.load()) std::this_thread::yield();

  // Queue has 2 free slots; a batch of 3 must bounce in full.
  std::vector<Ticket> tickets =
      service->submit_many({request, request, request});
  ASSERT_EQ(tickets.size(), 3u);
  for (Ticket& ticket : tickets) {
    const AuditResponse r = ticket.response.get();
    EXPECT_EQ(r.status.code(), Status::Code::kResourceExhausted);
  }
  EXPECT_EQ(service->queue_depth(), 0u);

  // A batch that fits is admitted whole.
  std::vector<Ticket> admitted = service->submit_many({request, request});
  EXPECT_EQ(service->queue_depth(), 2u);
  release.set_value();
  EXPECT_TRUE(parked.response.get().status.ok());
  for (Ticket& ticket : admitted) {
    EXPECT_TRUE(ticket.response.get().status.ok());
  }
}

TEST(Service, GracefulShutdownDrainsAcceptedRequests) {
  // Park the single worker, stack up two more requests, then shut down while
  // they are still queued: shutdown must resolve both, not abandon them.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> entered{0};
  ServiceOptions options = small_service_options();
  options.workers = 1;
  options.test_hook_pre_decide = [&] {
    if (entered.fetch_add(1) == 0) released.wait();
  };
  std::unique_ptr<AuditService> service = make_service(std::move(options));
  ASSERT_NE(service, nullptr);

  AuditRequest request;
  request.user = "alice";
  request.query_text = "bob_hiv";
  request.answer = true;
  std::vector<Ticket> tickets;
  tickets.push_back(service->submit(request));
  while (entered.load() == 0) std::this_thread::yield();
  tickets.push_back(service->submit(request));
  tickets.push_back(service->submit(request));
  EXPECT_EQ(service->queue_depth(), 2u);

  std::thread stopper([&] { service->shutdown(); });
  while (service->accepting()) std::this_thread::yield();

  // Admission is closed; new submissions resolve immediately as Unavailable.
  Ticket late = service->submit(request);
  EXPECT_EQ(late.response.get().status.code(), Status::Code::kUnavailable);

  release.set_value();
  stopper.join();
  for (Ticket& ticket : tickets) {
    const AuditResponse response = ticket.response.get();
    EXPECT_TRUE(response.status.ok()) << response.status.to_string();
  }
  service->shutdown();  // idempotent
}

// --- Online mode ----------------------------------------------------------

TEST(ServiceOnline, StrategyDeniesUnsafeQueriesWithoutDisclosing) {
  ServiceOptions options = small_service_options();
  options.online_strategy = OnlineStrategy::kSimulatable;
  std::unique_ptr<AuditService> service = make_service(std::move(options));
  ASSERT_NE(service, nullptr);

  // Asking for the sensitive record itself can never be simulatably safe.
  AuditRequest unsafe;
  unsafe.user = "mallory";
  unsafe.query_text = "bob_hiv";
  const AuditResponse denied = service->process(std::move(unsafe));
  ASSERT_TRUE(denied.status.ok()) << denied.status.to_string();
  EXPECT_TRUE(denied.denied);
  EXPECT_EQ(denied.sequence, 0u);  // nothing was disclosed or absorbed

  // A tautology discloses nothing and is always answerable.
  AuditRequest safe;
  safe.user = "mallory";
  safe.query_text = "bob_hiv -> bob_hiv";
  const AuditResponse answered = service->process(std::move(safe));
  ASSERT_TRUE(answered.status.ok()) << answered.status.to_string();
  EXPECT_FALSE(answered.denied);
  EXPECT_TRUE(answered.answer);
  EXPECT_EQ(answered.sequence, 1u);
  EXPECT_EQ(service->metrics_snapshot().counter("service.requests.denied"), 1);
}

// --- Session --------------------------------------------------------------

TEST(SessionTest, AbsorbIntersectsAndCounts) {
  Session session("alice", 2);
  EXPECT_EQ(session.accumulated(), WorldSet::universe(2));
  EXPECT_EQ(session.disclosures(), 0u);
  EXPECT_EQ(session.absorb(WorldSet(2, {1, 3})), 1u);
  EXPECT_EQ(session.absorb(WorldSet(2, {2, 3})), 2u);
  EXPECT_EQ(session.accumulated(), WorldSet(2, {3}));
}

// --- Verdict cache --------------------------------------------------------

EngineDecision safe_decision(const std::string& method) {
  EngineDecision d;
  d.verdict = Verdict::kSafe;
  d.method = method;
  d.certified = true;
  return d;
}

TEST(VerdictCacheTest, ForgedKeyCollisionIsDetectedNotServed) {
  obs::MetricsRegistry metrics;
  VerdictCache cache({/*capacity=*/8, /*shards=*/1}, metrics);
  const WorldSet a(3, {1});
  const WorldSet b(3, {1, 2});
  const WorldSet other(3, {5});

  const VerdictKey key = VerdictCache::key_for(a, b, PriorAssumption::kProduct);
  cache.insert(key, a, b, safe_decision("theorem-3.11"));

  // A forged request carrying the same key triple but different sets is a
  // hash collision: the cache must refuse to serve the stored verdict.
  EXPECT_FALSE(cache.lookup(key, a, other).has_value());
  EXPECT_EQ(metrics.snapshot().counter("service.cache.collisions"), 1);

  const std::optional<EngineDecision> hit = cache.lookup(key, a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->method, "theorem-3.11");
  EXPECT_EQ(hit->verdict, Verdict::kSafe);

  cache.invalidate_all();
  EXPECT_FALSE(cache.lookup(key, a, b).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(metrics.snapshot().counter("service.cache.invalidations"), 1);
}

TEST(VerdictCacheTest, EvictsLeastRecentlyUsed) {
  obs::MetricsRegistry metrics;
  VerdictCache cache({/*capacity=*/2, /*shards=*/1}, metrics);
  const WorldSet a(3, {1});
  std::vector<WorldSet> bs = {WorldSet(3, {0}), WorldSet(3, {2}),
                              WorldSet(3, {4})};
  std::vector<VerdictKey> keys;
  for (const WorldSet& b : bs) {
    keys.push_back(VerdictCache::key_for(a, b, PriorAssumption::kProduct));
  }
  cache.insert(keys[0], a, bs[0], safe_decision("m0"));
  cache.insert(keys[1], a, bs[1], safe_decision("m1"));
  // Touch key 0 so key 1 is the LRU victim when key 2 arrives.
  EXPECT_TRUE(cache.lookup(keys[0], a, bs[0]).has_value());
  cache.insert(keys[2], a, bs[2], safe_decision("m2"));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(keys[0], a, bs[0]).has_value());
  EXPECT_FALSE(cache.lookup(keys[1], a, bs[1]).has_value());
  EXPECT_TRUE(cache.lookup(keys[2], a, bs[2]).has_value());
  EXPECT_EQ(metrics.snapshot().counter("service.cache.evictions"), 1);
}

TEST(VerdictCacheTest, DistinctPriorsDoNotShareEntries) {
  obs::MetricsRegistry metrics;
  VerdictCache cache({/*capacity=*/8, /*shards=*/2}, metrics);
  const WorldSet a(3, {1});
  const WorldSet b(3, {1, 2});
  cache.insert(VerdictCache::key_for(a, b, PriorAssumption::kUnrestricted), a,
               b, safe_decision("unrestricted"));
  EXPECT_FALSE(
      cache.lookup(VerdictCache::key_for(a, b, PriorAssumption::kProduct), a, b)
          .has_value());
}

// Mirrors VerdictCache::KeyHash so the test can steer keys into a chosen
// shard of an 8-shard cache.
std::size_t shard_index(const VerdictKey& key, unsigned shards) {
  return static_cast<std::size_t>(bits::hash_combine(
             bits::hash_combine(key.a_hash, key.b_hash),
             static_cast<std::uint64_t>(key.prior))) %
         shards;
}

TEST(VerdictCacheTest, SameShardSlotCollisionIsCountedNeverServed) {
  constexpr unsigned kShards = 8;
  obs::MetricsRegistry metrics;
  VerdictCache cache({/*capacity=*/32, /*shards=*/kShards}, metrics);

  // Search real (A, B) pairs until two DISTINCT key triples land in the
  // same shard (pigeonhole: at most kShards+1 of the 16 candidate B's).
  const WorldSet a(3, {1, 2});
  std::vector<std::pair<VerdictKey, WorldSet>> probes;
  std::optional<std::pair<std::size_t, std::size_t>> same_shard;
  for (World w = 0; w < 16 && !same_shard; ++w) {
    const WorldSet b = w < 8 ? WorldSet(3, {w})
                             : WorldSet(3, {static_cast<World>(w - 8),
                                            static_cast<World>((w - 7) % 8)});
    const VerdictKey key = VerdictCache::key_for(a, b, PriorAssumption::kProduct);
    for (std::size_t j = 0; j < probes.size(); ++j) {
      if (shard_index(probes[j].first, kShards) == shard_index(key, kShards)) {
        same_shard = {j, probes.size()};
        break;
      }
    }
    probes.emplace_back(key, b);
  }
  ASSERT_TRUE(same_shard.has_value()) << "no shard pair among 16 probes";
  const auto& [k1, b1] = probes[same_shard->first];
  const auto& [k2, b2] = probes[same_shard->second];
  ASSERT_FALSE(k1 == k2);

  // Distinct keys in one shard are independent slots: both hit, no
  // collision is counted.
  cache.insert(k1, a, b1, safe_decision("slot-1"));
  cache.insert(k2, a, b2, safe_decision("slot-2"));
  EXPECT_EQ(cache.lookup(k1, a, b1)->method, "slot-1");
  EXPECT_EQ(cache.lookup(k2, a, b2)->method, "slot-2");
  EXPECT_EQ(metrics.snapshot().counter("service.cache.collisions"), 0);

  // Now force a true hash collision INSIDE that slot: the pair (a, b2)
  // arriving under k1's key triple (as a full 128-bit WorldSet::hash
  // collision would). The lookup must degrade to a counted miss — slot-1's
  // verdict is never served for (a, b2).
  EXPECT_FALSE(cache.lookup(k1, a, b2).has_value());
  EXPECT_EQ(metrics.snapshot().counter("service.cache.collisions"), 1);

  // The collision-overwrite path: the newest verdict wins the slot, after
  // which the ORIGINAL pair misses with another counted collision rather
  // than receiving slot-1b's verdict.
  EngineDecision d = safe_decision("slot-1b");
  d.verdict = Verdict::kUnsafe;
  cache.insert(k1, a, b2, d);
  const std::optional<EngineDecision> refreshed = cache.lookup(k1, a, b2);
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_EQ(refreshed->method, "slot-1b");
  EXPECT_EQ(refreshed->verdict, Verdict::kUnsafe);
  EXPECT_FALSE(cache.lookup(k1, a, b1).has_value());
  EXPECT_EQ(metrics.snapshot().counter("service.cache.collisions"), 2);

  // The neighbouring slot in the same shard was never disturbed.
  EXPECT_EQ(cache.lookup(k2, a, b2)->method, "slot-2");
}

// --- Wire protocol --------------------------------------------------------

TEST(Protocol, RequestRoundTrips) {
  WireRequest request;
  request.op = Op::kAudit;
  request.id = 42;
  request.user = "alice \"quoted\"";
  request.query = "bob_hiv -> bob_transfusion";
  request.answer = true;
  request.deadline_ms = 250;

  WireRequest parsed;
  ASSERT_TRUE(parse_request(serialize_request(request), &parsed).ok());
  EXPECT_EQ(parsed.op, Op::kAudit);
  EXPECT_EQ(parsed.id, 42u);
  EXPECT_EQ(parsed.user, request.user);
  EXPECT_EQ(parsed.query, request.query);
  ASSERT_TRUE(parsed.answer.has_value());
  EXPECT_TRUE(*parsed.answer);
  EXPECT_EQ(parsed.deadline_ms, 250);

  for (const Op op : {Op::kHello, Op::kMetrics, Op::kShutdown}) {
    WireRequest control;
    control.op = op;
    control.id = 7;
    WireRequest back;
    ASSERT_TRUE(parse_request(serialize_request(control), &back).ok())
        << to_string(op);
    EXPECT_EQ(back.op, op);
    EXPECT_FALSE(back.answer.has_value());
  }
}

TEST(Protocol, ResponseRoundTrips) {
  WireResponse response;
  response.id = 9;
  response.ok = true;
  response.answer = true;
  response.verdict = "unsafe";
  response.method = "projected[1/3]+box-necessary";
  response.certified = true;
  response.cached = true;
  response.cumulative_verdict = "unsafe";
  response.cumulative_method = "projected[1/3]+box-necessary";
  response.sequence = 3;

  WireResponse parsed;
  ASSERT_TRUE(parse_response(serialize_response(response), &parsed).ok());
  EXPECT_EQ(parsed.id, 9u);
  EXPECT_TRUE(parsed.ok);
  EXPECT_TRUE(parsed.answer);
  EXPECT_EQ(parsed.verdict, "unsafe");
  EXPECT_EQ(parsed.method, "projected[1/3]+box-necessary");
  EXPECT_TRUE(parsed.certified);
  EXPECT_TRUE(parsed.cached);
  EXPECT_EQ(parsed.sequence, 3u);
}

TEST(Protocol, MalformedFramesAreInvalidArgument) {
  WireRequest request;
  const char* bad[] = {
      "",                                      // not an object
      "{\"op\": \"audit\"",                    // truncated
      "{\"op\": \"explode\", \"id\": 1}",      // unknown op
      "{\"op\": \"audit\", \"id\": 1}",        // audit without user/query
      "{\"op\": {\"nested\": 1}, \"id\": 1}",  // nesting is rejected
      "{\"op\": \"audit\", \"id\": 1, \"user\": \"u\", \"query\": \"q\","
      " \"deadline_ms\": -5}",                 // negative deadline
      "{\"op\": \"audit\", \"id\": \"one\", \"user\": \"u\","
      " \"query\": \"q\"}",                    // wrong type for id
  };
  for (const char* line : bad) {
    EXPECT_EQ(parse_request(line, &request).code(),
              Status::Code::kInvalidArgument)
        << line;
  }
}

// A hostile digit run must come back as InvalidArgument, never as a thrown
// std::out_of_range escaping onto a connection thread (process-killing DoS).
TEST(Protocol, NumberOutOfRangeIsStatusNotThrow) {
  WireRequest request;
  const char* bad[] = {
      "{\"op\": \"audit\", \"id\": 99999999999999999999999,"
      " \"user\": \"u\", \"query\": \"q\"}",
      "{\"op\": \"audit\", \"id\": -99999999999999999999999,"
      " \"user\": \"u\", \"query\": \"q\"}",
  };
  for (const char* line : bad) {
    const Status s = parse_request(line, &request);
    EXPECT_EQ(s.code(), Status::Code::kInvalidArgument) << line;
    EXPECT_NE(s.to_string().find("out of range"), std::string::npos) << line;
  }
  // A 4096-digit run is still just InvalidArgument.
  const std::string huge =
      "{\"op\": \"audit\", \"id\": " + std::string(4096, '9') +
      ", \"user\": \"u\", \"query\": \"q\"}";
  EXPECT_EQ(parse_request(huge, &request).code(),
            Status::Code::kInvalidArgument);
  // int64 extremes still parse.
  WireRequest ok;
  ASSERT_TRUE(parse_request("{\"op\": \"audit\", \"id\": 9223372036854775807,"
                            " \"user\": \"u\", \"query\": \"q\"}",
                            &ok)
                  .ok());
  EXPECT_EQ(ok.id, 9223372036854775807u);
}

// \u escapes decode to UTF-8 (surrogate pairs included), so non-ASCII user
// names round-trip instead of collapsing to '?' — two distinct users must
// never merge into one session key.
TEST(Protocol, UnicodeEscapesDecodeToUtf8) {
  WireRequest request;
  ASSERT_TRUE(parse_request("{\"op\": \"reset_session\", \"id\": 1,"
                            " \"user\": \"Ren\\u00e9e\"}",
                            &request)
                  .ok());
  EXPECT_EQ(request.user, "Ren\xc3\xa9\x65");  // René + e, é as UTF-8

  ASSERT_TRUE(parse_request("{\"op\": \"reset_session\", \"id\": 2,"
                            " \"user\": \"\\ud83d\\ude00\"}",  // U+1F600
                            &request)
                  .ok());
  EXPECT_EQ(request.user, "\xf0\x9f\x98\x80");

  // Distinct escaped users stay distinct.
  WireRequest other;
  ASSERT_TRUE(parse_request("{\"op\": \"reset_session\", \"id\": 3,"
                            " \"user\": \"\\u4e16\"}",
                            &other)
                  .ok());
  EXPECT_NE(other.user, request.user);

  // Raw UTF-8 written by our serializer survives a round-trip.
  WireRequest original;
  original.op = Op::kResetSession;
  original.id = 4;
  original.user = "\xc3\xa9\xe4\xb8\x96\xf0\x9f\x98\x80";
  WireRequest back;
  ASSERT_TRUE(parse_request(serialize_request(original), &back).ok());
  EXPECT_EQ(back.user, original.user);

  // Unpaired surrogates are malformed, not silently substituted.
  const char* bad[] = {
      "{\"op\": \"hello\", \"id\": 1, \"user\": \"\\ud83d\"}",
      "{\"op\": \"hello\", \"id\": 1, \"user\": \"\\ud83dx\"}",
      "{\"op\": \"hello\", \"id\": 1, \"user\": \"\\ud83d\\u0041\"}",
      "{\"op\": \"hello\", \"id\": 1, \"user\": \"\\ude00\"}",
  };
  for (const char* line : bad) {
    EXPECT_EQ(parse_request(line, &request).code(),
              Status::Code::kInvalidArgument)
        << line;
  }
}

TEST(Protocol, MakeAuditResponseMapsStatusAndFindings) {
  AuditResponse ok_response;
  ok_response.status = Status::Ok();
  ok_response.answer = true;
  ok_response.disclosure.verdict = Verdict::kSafe;
  ok_response.disclosure.method = "theorem-3.11";
  ok_response.disclosure.certified = true;
  ok_response.cumulative.verdict = Verdict::kUnsafe;
  ok_response.cumulative.method = "box-necessary";
  ok_response.disclosure_cached = true;
  ok_response.sequence = 2;
  const WireResponse wire = make_audit_response(5, ok_response);
  EXPECT_TRUE(wire.ok);
  EXPECT_EQ(wire.id, 5u);
  EXPECT_EQ(wire.verdict, "safe");
  EXPECT_EQ(wire.method, "theorem-3.11");
  EXPECT_TRUE(wire.cached);
  EXPECT_EQ(wire.cumulative_verdict, "unsafe");
  EXPECT_EQ(wire.sequence, 2u);

  AuditResponse failed;
  failed.status = Status::ResourceExhausted("queue full");
  const WireResponse rejected = make_audit_response(6, failed);
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, "resource_exhausted");
  EXPECT_NE(rejected.error.find("queue full"), std::string::npos);

  AuditResponse denied;
  denied.denied = true;
  const WireResponse denial = make_audit_response(7, denied);
  EXPECT_TRUE(denial.ok);
  EXPECT_TRUE(denial.denied);
  EXPECT_TRUE(denial.verdict.empty());
}

TEST(Protocol, StatusCodeSlugsAreStable) {
  EXPECT_EQ(status_code_slug(Status::Code::kOk), "ok");
  EXPECT_EQ(status_code_slug(Status::Code::kInvalidArgument),
            "invalid_argument");
  EXPECT_EQ(status_code_slug(Status::Code::kResourceExhausted),
            "resource_exhausted");
  EXPECT_EQ(status_code_slug(Status::Code::kDeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(status_code_slug(Status::Code::kCancelled), "cancelled");
  EXPECT_EQ(status_code_slug(Status::Code::kUnavailable), "unavailable");
}

}  // namespace
}  // namespace service
}  // namespace epi
