#include <gtest/gtest.h>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/report.h"

namespace epi {
namespace {

RecordUniverse bob_universe() {
  RecordUniverse u;
  u.add("bob_hiv");
  u.add("bob_transfusion");
  return u;
}

TEST(AuditLog, RecordsAnswersAgainstDatabase) {
  InMemoryDatabase db(bob_universe());
  db.insert("bob_hiv");
  AuditLog log;
  EXPECT_TRUE(log.record("alice", "bob_hiv", db, "2005-01-01"));
  EXPECT_FALSE(log.record("alice", "bob_transfusion", db));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.users(), (std::vector<std::string>{"alice"}));
  // Disclosed set of a false answer is the complement.
  const WorldSet b = log.entries()[1].disclosed_set(db.universe());
  EXPECT_EQ(b, WorldSet::from_strings(2, {"00", "10"}));
}

TEST(AuditLog, RecordWithAnswer) {
  AuditLog log;
  log.record_with_answer("mallory", "bob_hiv", true, "2007-06-01");
  EXPECT_EQ(log.entries()[0].user, "mallory");
  EXPECT_TRUE(log.entries()[0].answer);
}

TEST(Auditor, PaperSection11Example) {
  // A = "bob_hiv"; B = "bob_hiv -> bob_transfusion" answered true. Epistemic
  // privacy holds for ANY prior (the possible-worlds table of Section 1.1),
  // while the direct query "bob_hiv" is flagged.
  RecordUniverse u = bob_universe();
  InMemoryDatabase db(u);
  db.insert("bob_hiv");
  db.insert("bob_transfusion");

  AuditLog log;
  log.record("alice", "bob_hiv -> bob_transfusion", db);
  log.record("mallory", "bob_hiv", db);

  Auditor auditor(u, PriorAssumption::kUnrestricted);
  AuditReport report = auditor.audit(log, "bob_hiv");
  ASSERT_EQ(report.per_disclosure.size(), 2u);
  EXPECT_EQ(report.per_disclosure[0].verdict, Verdict::kSafe);
  EXPECT_EQ(report.per_disclosure[1].verdict, Verdict::kUnsafe);
  EXPECT_TRUE(report.per_disclosure[1].certified);
  EXPECT_EQ(report.count(Verdict::kUnsafe, AuditReport::Section::kPerDisclosure),
            1u);
}

TEST(Auditor, ImplicationIsSafeUnderEveryPriorFamily) {
  RecordUniverse u = bob_universe();
  InMemoryDatabase db(u);
  db.insert("bob_hiv");
  db.insert("bob_transfusion");
  AuditLog log;
  log.record("alice", "bob_hiv -> bob_transfusion", db);

  for (PriorAssumption prior :
       {PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
        PriorAssumption::kLogSupermodular}) {
    Auditor auditor(u, prior);
    AuditReport report = auditor.audit(log, "bob_hiv");
    EXPECT_EQ(report.per_disclosure[0].verdict, Verdict::kSafe)
        << to_string(prior);
  }
}

TEST(Auditor, ProductPriorAllowsMoreThanUnrestricted) {
  // B = "!bob_transfusion" answered true protects A = "bob_hiv" under the
  // product (and log-supermodular) assumption by monotonicity, but not under
  // unrestricted priors (a user may know "no transfusion => HIV").
  RecordUniverse u = bob_universe();
  InMemoryDatabase db(u);
  db.insert("bob_hiv");  // HIV yes, transfusion no
  AuditLog log;
  log.record("alice", "!bob_transfusion", db);

  Auditor unrestricted(u, PriorAssumption::kUnrestricted);
  EXPECT_EQ(unrestricted.audit(log, "bob_hiv").per_disclosure[0].verdict,
            Verdict::kUnsafe);

  Auditor product(u, PriorAssumption::kProduct);
  AuditReport product_report = product.audit(log, "bob_hiv");
  EXPECT_EQ(product_report.per_disclosure[0].verdict, Verdict::kSafe);
  EXPECT_TRUE(product_report.per_disclosure[0].certified);

  Auditor supermodular(u, PriorAssumption::kLogSupermodular);
  EXPECT_EQ(supermodular.audit(log, "bob_hiv").per_disclosure[0].verdict,
            Verdict::kSafe);
}

TEST(Auditor, CumulativeDisclosuresCatchComposition) {
  // Two individually safe answers whose conjunction pins down A.
  RecordUniverse u;
  u.add("r1");
  u.add("r2");
  InMemoryDatabase db(u);
  db.insert("r1");
  db.insert("r2");
  AuditLog log;
  // "r1 | !r2" (true) and "r1 | r2" (true): conjunction with each other
  // still leaves r1 undetermined? r1=0,r2=1 satisfies second not first;
  // r1=0,r2=0 satisfies first not second; so conjunction = {r1=1} ∪ {}, i.e.
  // exactly the r1 worlds — revealing A = r1.
  log.record("eve", "r1 | !r2", db);
  log.record("eve", "r1 | r2", db);

  Auditor auditor(u, PriorAssumption::kUnrestricted);
  AuditReport report = auditor.audit(log, "r1");
  // Each disclosure alone is unsafe under unrestricted priors anyway; the
  // cumulative check must certainly flag eve.
  ASSERT_EQ(report.per_user_cumulative.size(), 1u);
  EXPECT_EQ(report.per_user_cumulative[0].user, "eve");
  EXPECT_EQ(report.per_user_cumulative[0].verdict, Verdict::kUnsafe);
}

TEST(Auditor, CumulativeUnderProductPrior) {
  RecordUniverse u;
  u.add("r1");
  u.add("r2");
  InMemoryDatabase db(u);
  db.insert("r1");
  db.insert("r2");
  AuditLog log;
  log.record("eve", "r1 | !r2", db);
  log.record("eve", "r1 | r2", db);
  Auditor auditor(u, PriorAssumption::kProduct);
  AuditReport report = auditor.audit(log, "r1");
  // Conjunction = the r1 worlds: P[A|B] = 1 > P[A]; must be unsafe with a
  // product witness.
  EXPECT_EQ(report.per_user_cumulative[0].verdict, Verdict::kUnsafe);
  EXPECT_FALSE(report.per_user_cumulative[0].detail.empty());
}

TEST(Auditor, TimelineScenarioFromIntroduction) {
  // Alice and Cindy read Bob's record in 2005 (HIV-negative at the time),
  // Mallory in 2007 (after infection). Auditing "bob_hiv" flags Mallory
  // only — the motivating story of the paper's introduction.
  RecordUniverse u = bob_universe();
  InMemoryDatabase db(u);
  AuditLog log;
  log.record("alice", "bob_hiv", db, "2005-03-01");  // answer: false
  log.record("cindy", "bob_hiv", db, "2005-07-15");  // answer: false
  db.insert("bob_hiv");                              // Bob contracts HIV in 2006
  log.record("mallory", "bob_hiv", db, "2007-02-20");  // answer: true

  Auditor auditor(u, PriorAssumption::kUnrestricted);
  AuditReport report = auditor.audit(log, "bob_hiv");
  EXPECT_EQ(report.per_disclosure[0].verdict, Verdict::kSafe);   // alice
  EXPECT_EQ(report.per_disclosure[1].verdict, Verdict::kSafe);   // cindy
  EXPECT_EQ(report.per_disclosure[2].verdict, Verdict::kUnsafe); // mallory
}

TEST(Auditor, ReportFormatting) {
  RecordUniverse u = bob_universe();
  InMemoryDatabase db(u);
  db.insert("bob_hiv");
  db.insert("bob_transfusion");
  AuditLog log;
  log.record("alice", "bob_hiv -> bob_transfusion", db);
  log.record("mallory", "bob_hiv", db);
  Auditor auditor(u, PriorAssumption::kUnrestricted);
  const std::string text = format_report(auditor.audit(log, "bob_hiv"));
  EXPECT_NE(text.find("Audit query  : bob_hiv"), std::string::npos);
  EXPECT_NE(text.find("unrestricted"), std::string::npos);
  EXPECT_NE(text.find("mallory"), std::string::npos);
  EXPECT_NE(text.find("unsafe"), std::string::npos);
  EXPECT_NE(text.find("accumulated knowledge"), std::string::npos);
}

TEST(Auditor, EmptyUniverseRejected) {
  EXPECT_THROW(Auditor(RecordUniverse{}, PriorAssumption::kProduct),
               std::invalid_argument);
}

TEST(Auditor, PriorAssumptionNames) {
  EXPECT_EQ(to_string(PriorAssumption::kUnrestricted), "unrestricted");
  EXPECT_EQ(to_string(PriorAssumption::kProduct), "product");
  EXPECT_EQ(to_string(PriorAssumption::kLogSupermodular), "log-supermodular");
}

}  // namespace
}  // namespace epi
