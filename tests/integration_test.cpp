// End-to-end integration tests: query text -> parser -> world sets ->
// auditor verdicts, cross-checked against brute-force semantics.
#include <gtest/gtest.h>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/report.h"
#include "db/parser.h"
#include "optimize/coordinate_ascent.h"
#include "probabilistic/distribution.h"

namespace epi {
namespace {

// Random query text generator over a fixed record set.
std::string random_query(Rng& rng, const std::vector<std::string>& names,
                         int depth = 2) {
  if (depth == 0 || rng.next_bool(0.4)) {
    return names[rng.next_below(names.size())];
  }
  switch (rng.next_below(4)) {
    case 0:
      return "!(" + random_query(rng, names, depth - 1) + ")";
    case 1:
      return "(" + random_query(rng, names, depth - 1) + " & " +
             random_query(rng, names, depth - 1) + ")";
    case 2:
      return "(" + random_query(rng, names, depth - 1) + " | " +
             random_query(rng, names, depth - 1) + ")";
    default:
      return "(" + random_query(rng, names, depth - 1) + " -> " +
             random_query(rng, names, depth - 1) + ")";
  }
}

TEST(Integration, ParserCompileMatchesEvaluate) {
  RecordUniverse u;
  const std::vector<std::string> names = {"r0", "r1", "r2", "r3"};
  for (const auto& name : names) u.add(name);
  Rng rng(2718);
  for (int t = 0; t < 100; ++t) {
    const std::string text = random_query(rng, names, 3);
    const QueryPtr q = parse_query(text);
    const WorldSet compiled = q->compile(u);
    for (World w = 0; w < 16; ++w) {
      EXPECT_EQ(compiled.contains(w), q->evaluate(u, w)) << text;
    }
  }
}

TEST(Integration, UnrestrictedAuditorVerdictsMatchBruteForce) {
  RecordUniverse u;
  const std::vector<std::string> names = {"r0", "r1", "r2"};
  for (const auto& name : names) u.add(name);
  Rng rng(3141);

  for (int scenario = 0; scenario < 20; ++scenario) {
    InMemoryDatabase db(u);
    db.set_state(static_cast<World>(rng.next_bits(3)));
    AuditLog log;
    const int queries = 4;
    for (int i = 0; i < queries; ++i) {
      log.record("user" + std::to_string(i % 2), random_query(rng, names), db);
    }
    const std::string audit_text = random_query(rng, names);
    Auditor auditor(u, PriorAssumption::kUnrestricted);
    const AuditReport report = auditor.audit(log, audit_text);
    const WorldSet a = parse_query(audit_text)->compile(u);
    ASSERT_EQ(report.per_disclosure.size(), static_cast<std::size_t>(queries));
    for (int i = 0; i < queries; ++i) {
      const WorldSet b = log.entries()[i].disclosed_set(u);
      // Brute force: random priors try to find a gain.
      bool gained = false;
      for (int trial = 0; trial < 300; ++trial) {
        const Distribution p = Distribution::random(3, rng);
        if (p.prob(b) > 0 && p.conditional(a, b) > p.prob(a) + 1e-9) {
          gained = true;
          break;
        }
      }
      if (report.per_disclosure[i].verdict == Verdict::kSafe) {
        EXPECT_FALSE(gained) << audit_text << " vs " << log.entries()[i].query_text;
      } else {
        // Theorem 3.11 is exact, so unsafe must be realizable (witness check).
        EXPECT_FALSE(report.per_disclosure[i].detail.empty());
      }
    }
  }
}

TEST(Integration, ProductAuditorSoundOnRandomScenarios) {
  RecordUniverse u;
  const std::vector<std::string> names = {"r0", "r1", "r2"};
  for (const auto& name : names) u.add(name);
  Rng rng(1618);
  AuditorOptions options;
  options.enable_sos = false;  // keep the test fast; SOS covered elsewhere
  Auditor auditor(u, PriorAssumption::kProduct, options);

  for (int scenario = 0; scenario < 12; ++scenario) {
    InMemoryDatabase db(u);
    db.set_state(static_cast<World>(rng.next_bits(3)));
    AuditLog log;
    log.record("eve", random_query(rng, names), db);
    const std::string audit_text = random_query(rng, names);
    const AuditReport report = auditor.audit(log, audit_text);
    const WorldSet a = parse_query(audit_text)->compile(u);
    const WorldSet b = log.entries()[0].disclosed_set(u);
    const AuditFinding& f = report.per_disclosure[0];
    // Brute-force product priors.
    double worst = -1.0;
    for (int trial = 0; trial < 2000; ++trial) {
      worst = std::max(worst,
                       ProductDistribution::random(3, rng).safety_gap(a, b));
    }
    if (f.verdict == Verdict::kSafe) {
      EXPECT_LE(worst, 1e-9) << audit_text;
    } else {
      EXPECT_GT(worst, -1e-12) << audit_text;  // a gain must exist
    }
  }
}

TEST(Integration, PriorFamiliesFormAHierarchy) {
  // Unrestricted-safe => supermodular-safe => product-safe: verdicts across
  // the auditor configurations must respect the family inclusions
  // Pi_m0 ⊂ Pi_m+ ⊂ all priors.
  RecordUniverse u;
  const std::vector<std::string> names = {"r0", "r1", "r2"};
  for (const auto& name : names) u.add(name);
  Rng rng(112);
  AuditorOptions options;
  options.enable_sos = false;
  Auditor unrestricted(u, PriorAssumption::kUnrestricted, options);
  Auditor supermodular(u, PriorAssumption::kLogSupermodular, options);
  Auditor product(u, PriorAssumption::kProduct, options);

  for (int t = 0; t < 60; ++t) {
    const WorldSet a = parse_query(random_query(rng, names))->compile(u);
    const WorldSet b = parse_query(random_query(rng, names))->compile(u);
    const Verdict vu = unrestricted.audit_sets(a, b).verdict;
    const Verdict vm = supermodular.audit_sets(a, b).verdict;
    const Verdict vp = product.audit_sets(a, b).verdict;
    if (vu == Verdict::kSafe) {
      EXPECT_NE(vm, Verdict::kUnsafe);
      EXPECT_NE(vp, Verdict::kUnsafe);
    }
    if (vm == Verdict::kSafe) {
      EXPECT_NE(vp, Verdict::kUnsafe);
    }
    if (vp == Verdict::kUnsafe) {
      EXPECT_NE(vm, Verdict::kSafe);
      EXPECT_NE(vu, Verdict::kSafe);
    }
  }
}

TEST(Integration, ReportCountsConsistent) {
  RecordUniverse u;
  u.add("x");
  u.add("y");
  InMemoryDatabase db(u);
  db.insert("x");
  AuditLog log;
  log.record("a", "x", db);
  log.record("b", "y", db);
  log.record("a", "x | y", db);
  Auditor auditor(u, PriorAssumption::kUnrestricted);
  const AuditReport r = auditor.audit(log, "x");
  EXPECT_EQ(r.per_disclosure.size(), 3u);
  EXPECT_EQ(r.per_user_cumulative.size(), 2u);
  constexpr auto kDisclosed = AuditReport::Section::kPerDisclosure;
  EXPECT_EQ(r.count(Verdict::kSafe, kDisclosed) +
                r.count(Verdict::kUnsafe, kDisclosed) +
                r.count(Verdict::kUnknown, kDisclosed),
            3u);
  // The default section aggregates per-disclosure AND per-user findings.
  EXPECT_EQ(r.count(Verdict::kSafe) + r.count(Verdict::kUnsafe) +
                r.count(Verdict::kUnknown),
            5u);
}

}  // namespace
}  // namespace epi
