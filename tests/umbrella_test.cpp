// Compilation smoke test for the umbrella header plus a couple of
// cross-module flows exercised through it.
#include <gtest/gtest.h>

#include "epistemic.h"

namespace epi {
namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
  RecordUniverse universe;
  universe.add("x");
  universe.add("y");
  InMemoryDatabase db(universe);
  db.insert("x");
  AuditLog log;
  log.record("u", "x | y", db);
  Auditor auditor(universe, PriorAssumption::kProduct);
  const AuditReport report = auditor.audit(log, "x");
  EXPECT_EQ(report.per_disclosure.size(), 1u);
  EXPECT_FALSE(format_report(report).empty());
}

TEST(Umbrella, EveryLayerReachable) {
  // One symbol per layer, to catch accidental header breakage.
  EXPECT_EQ(Rational(1, 2) + Rational(1, 2), Rational(1));
  EXPECT_TRUE(WorldSet::universe(2).is_universe());
  EXPECT_TRUE(FiniteSet::universe(3).is_universe());
  EXPECT_TRUE(is_upset(WorldSet::universe(2)));
  EXPECT_EQ(match(0b01, 0b11).star_count(), 1u);
  EXPECT_TRUE(unconditionally_safe(WorldSet(2), WorldSet::universe(2)));
  EXPECT_EQ(Distribution::uniform(2).prob(World{0}), 0.25);
  EXPECT_EQ(ProductDistribution::constant(2, 0.5).prob(World{0}), 0.25);
  EXPECT_EQ(motzkin_polynomial().degree(), 6u);
  EXPECT_EQ(to_string(Verdict::kSafe), "safe");
  EXPECT_EQ(to_string(OnlineStrategy::kSimulatable), "simulatable");
  EXPECT_EQ(to_string(PriorAssumption::kSubcubeKnowledge), "subcube-knowledge");
  EXPECT_EQ(Graph::cycle(4).edge_count(), 4u);
  EXPECT_DOUBLE_EQ(logit(0.5), 0.0);
}

}  // namespace
}  // namespace epi
