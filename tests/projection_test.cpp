// Tests for the relevant-coordinate projection (Section 6's N-vs-2^n
// argument) and its integration into the full decision procedure.
#include <gtest/gtest.h>

#include "criteria/projection.h"
#include "optimize/coordinate_ascent.h"
#include "optimize/emptiness.h"
#include "probabilistic/product.h"

namespace epi {
namespace {

WorldSet cylinder(unsigned n, unsigned coord, bool value) {
  WorldSet s(n);
  for (World w = 0; w < (World{1} << n); ++w) {
    if (world_bit(w, coord) == value) s.insert(w);
  }
  return s;
}

TEST(Projection, KeepsOnlyCriticalCoordinates) {
  const unsigned n = 5;
  // A depends on coordinate 1, B on coordinate 3.
  WorldSet a = cylinder(n, 1, true);
  WorldSet b = cylinder(n, 3, true);
  ProjectedPair p = project_to_critical(a, b);
  EXPECT_EQ(p.kept_coordinates, (std::vector<unsigned>{1, 3}));
  EXPECT_EQ(p.a.n(), 2u);
  EXPECT_EQ(p.original_n(), n);
  // Projected sets are the single-coordinate cylinders in the new space.
  EXPECT_EQ(p.a, cylinder(2, 0, true));
  EXPECT_EQ(p.b, cylinder(2, 1, true));
}

TEST(Projection, MembershipPreserved) {
  Rng rng(3);
  const unsigned n = 5;
  for (int t = 0; t < 20; ++t) {
    // Build sets depending only on coordinates {0, 2}.
    const World a_patterns = static_cast<World>(rng.next_bits(4));
    const World b_patterns = static_cast<World>(rng.next_bits(4));
    WorldSet a(n), b(n);
    for (World w = 0; w < (World{1} << n); ++w) {
      const unsigned code = world_bit(w, 0) | (world_bit(w, 2) << 1);
      if ((a_patterns >> code) & 1) a.insert(w);
      if ((b_patterns >> code) & 1) b.insert(w);
    }
    ProjectedPair p = project_to_critical(a, b);
    EXPECT_LE(p.kept_coordinates.size(), 2u);
    for (World w = 0; w < (World{1} << n); ++w) {
      EXPECT_EQ(a.contains(w), p.a.contains(compress_world(p, w)));
      EXPECT_EQ(b.contains(w), p.b.contains(compress_world(p, w)));
    }
  }
}

TEST(Projection, LiftCompressRoundTrip) {
  const unsigned n = 6;
  WorldSet a = cylinder(n, 2, true) & cylinder(n, 4, false);
  WorldSet b = cylinder(n, 4, true);
  ProjectedPair p = project_to_critical(a, b);
  for (World w = 0; w < (World{1} << p.a.n()); ++w) {
    EXPECT_EQ(compress_world(p, p.lift(w)), w);
  }
}

TEST(Projection, TrivialSetsKeepOneCoordinate) {
  const unsigned n = 4;
  ProjectedPair p = project_to_critical(WorldSet(n), WorldSet::universe(n));
  EXPECT_EQ(p.kept_coordinates.size(), 1u);
  EXPECT_TRUE(p.a.is_empty());
  EXPECT_TRUE(p.b.is_universe());
}

TEST(Projection, GapInvariantUnderProjection) {
  // The product-prior safety gap of the projected pair (with projected
  // parameters) equals the original gap when irrelevant parameters are
  // arbitrary — the invariance the stage-0 reduction relies on.
  Rng rng(7);
  const unsigned n = 5;
  for (int t = 0; t < 20; ++t) {
    const World a_patterns = static_cast<World>(rng.next_bits(4));
    const World b_patterns = static_cast<World>(rng.next_bits(4));
    WorldSet a(n), b(n);
    for (World w = 0; w < (World{1} << n); ++w) {
      const unsigned code = world_bit(w, 1) | (world_bit(w, 3) << 1);
      if ((a_patterns >> code) & 1) a.insert(w);
      if ((b_patterns >> code) & 1) b.insert(w);
    }
    ProjectedPair p = project_to_critical(a, b);
    auto full = ProductDistribution::random(n, rng);
    std::vector<double> reduced_params;
    for (unsigned kept : p.kept_coordinates) reduced_params.push_back(full.param(kept));
    if (reduced_params.empty()) continue;
    ProductDistribution reduced(reduced_params);
    EXPECT_NEAR(full.safety_gap(a, b), reduced.safety_gap(p.a, p.b), 1e-10);
  }
}

TEST(Projection, FullDecisionUsesProjectionAndLiftsWitness) {
  // A = B = "coordinate 2 present" inside a 6-coordinate space: the decision
  // should project to 1 coordinate and still return a valid lifted witness.
  const unsigned n = 6;
  WorldSet a = cylinder(n, 2, true);
  const FullDecision d =
      decide_product_safety_complete(a, a, AscentOptions{}, /*enable_sos=*/false);
  EXPECT_EQ(d.verdict, Verdict::kUnsafe);
  EXPECT_NE(d.method.find("projected[1/6]"), std::string::npos) << d.method;
  ASSERT_TRUE(d.witness.has_value());
  EXPECT_EQ(d.witness->n(), n);
  EXPECT_GT(d.witness->safety_gap(a, a), 0.0);
}

TEST(Projection, FullDecisionAgreesWithUnprojectedOnRandomPairs) {
  Rng rng(11);
  const unsigned n = 5;
  for (int t = 0; t < 25; ++t) {
    // Sets over a random subset of coordinates.
    const World a_patterns = static_cast<World>(rng.next_bits(4));
    const World b_patterns = static_cast<World>(rng.next_bits(4));
    WorldSet a(n), b(n);
    for (World w = 0; w < (World{1} << n); ++w) {
      const unsigned code = world_bit(w, 0) | (world_bit(w, 4) << 1);
      if ((a_patterns >> code) & 1) a.insert(w);
      if ((b_patterns >> code) & 1) b.insert(w);
    }
    const FullDecision with_projection =
        decide_product_safety_complete(a, b, AscentOptions{}, false);
    // Ground truth on the full space via the optimizer alone.
    AscentOptions opts;
    opts.seed = 2200 + t;
    const double gap = maximize_product_gap(a, b, opts).max_gap;
    if (with_projection.verdict == Verdict::kSafe) {
      EXPECT_LE(gap, 1e-9);
    } else {
      ASSERT_TRUE(with_projection.witness.has_value());
      EXPECT_GT(with_projection.witness->safety_gap(a, b), 0.0);
    }
  }
}

}  // namespace
}  // namespace epi
