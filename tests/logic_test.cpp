// Tests for the epistemic-logic layer: S5 validities, announcement
// semantics, and the equivalence of the Definition 3.1 privacy predicate
// with its formula rendering.
#include <gtest/gtest.h>

#include "logic/epistemic_logic.h"
#include "possibilistic/safe.h"

namespace epi {
namespace {

TEST(Logic, PropositionAndConnectives) {
  const std::size_t m = 4;
  FormulaPtr p = proposition(FiniteSet(m, {0, 1}), "p");
  FormulaPtr q = proposition(FiniteSet(m, {1, 2}), "q");
  const FiniteSet s = FiniteSet::universe(m);
  EXPECT_TRUE(p->holds(0, s));
  EXPECT_FALSE(p->holds(2, s));
  EXPECT_TRUE(logical_and(p, q)->holds(1, s));
  EXPECT_FALSE(logical_and(p, q)->holds(0, s));
  EXPECT_TRUE(logical_or(p, q)->holds(2, s));
  EXPECT_TRUE(logical_implies(p, q)->holds(3, s));   // vacuous
  EXPECT_FALSE(logical_implies(p, q)->holds(0, s));  // p holds, q fails
  EXPECT_TRUE(logical_not(p)->holds(3, s));
  EXPECT_EQ(logical_implies(p, q)->to_string(), "(p -> q)");
}

TEST(Logic, KnowledgeModality) {
  const std::size_t m = 4;
  FormulaPtr p = proposition(FiniteSet(m, {0, 1}), "p");
  // Agent considering {0,1}: knows p. Considering {0,2}: does not.
  EXPECT_TRUE(knows(p)->holds(0, FiniteSet(m, {0, 1})));
  EXPECT_FALSE(knows(p)->holds(0, FiniteSet(m, {0, 2})));
  EXPECT_TRUE(possible(p)->holds(0, FiniteSet(m, {0, 2})));
  EXPECT_FALSE(possible(p)->holds(2, FiniteSet(m, {2, 3})));
  EXPECT_EQ(knows(p)->to_string(), "K p");
}

TEST(Logic, S5AxiomsValidOnAllConsistentKnowledgeWorlds) {
  // T, 4 and 5 must hold at every consistent (omega, S) for every
  // proposition — the hallmark of the paper's knowledge (not belief) model.
  const std::size_t m = 4;
  auto full = SecondLevelKnowledge::full(m);
  Rng rng(3);
  for (int t = 0; t < 20; ++t) {
    FormulaPtr p = proposition(FiniteSet::random(m, rng, 0.5), "p");
    EXPECT_TRUE(valid_in(full, axiom_t(p)));
    EXPECT_TRUE(valid_in(full, axiom_4(p)));
    EXPECT_TRUE(valid_in(full, axiom_5(p)));
  }
}

TEST(Logic, KnowledgeRequiresTruthfulness) {
  // With an inconsistent pair (not constructible through the API), K p could
  // hold while p fails; the API prevents it, so axiom T cannot be violated.
  // Verify the guard exists:
  EXPECT_THROW(KnowledgeWorld(3, FiniteSet(4, {0, 1})), std::invalid_argument);
}

TEST(Logic, AnnouncementSemantics) {
  const std::size_t m = 4;
  FormulaPtr p = proposition(FiniteSet(m, {1}), "p");
  const FiniteSet b(m, {1, 2});
  // Before: agent considering {1,2,3} does not know p. After learning B it
  // considers {1,2} — still does not know p.
  EXPECT_FALSE(after_learning(b, knows(p))->holds(1, FiniteSet(m, {1, 2, 3})));
  // Agent considering {1,3}: after B only {1} remains — knows p.
  EXPECT_TRUE(after_learning(b, knows(p))->holds(1, FiniteSet(m, {1, 3})));
  // Vacuous at worlds where B is false.
  EXPECT_TRUE(after_learning(b, knows(p))->holds(3, FiniteSet(m, {1, 3, 0})));
  EXPECT_EQ(after_learning(b, knows(p))->to_string(), "[B]K p");
}

TEST(Logic, PrivacyFormulaEquivalentToDefinition31) {
  // The headline: valid_in(K, (¬K A) -> [B](¬K A))  <=>  Safe_K(A, B),
  // across random explicit K and random A, B.
  Rng rng(7);
  const std::size_t m = 5;
  int agree = 0, total = 0;
  for (int t = 0; t < 200; ++t) {
    SecondLevelKnowledge k(m);
    for (int p = 0; p < 6; ++p) {
      FiniteSet s = FiniteSet::random(m, rng, 0.5);
      if (s.is_empty()) continue;
      auto v = s.to_vector();
      k.add(v[rng.next_below(v.size())], s);
    }
    if (k.empty()) continue;
    FiniteSet a = FiniteSet::random(m, rng, 0.5);
    FiniteSet b = FiniteSet::random(m, rng, 0.6);
    ++total;
    agree += valid_in(k, privacy_formula(a, b)) == safe_possibilistic(k, a, b);
  }
  EXPECT_EQ(agree, total);
  EXPECT_GT(total, 150);
}

TEST(Logic, PrivacyFormulaOnSection11Example) {
  // Two records, A = "r1 present" (worlds 1, 3), B = "r1 -> r2" (all but 1).
  const std::size_t m = 4;
  FiniteSet a(m, {1, 3});
  FiniteSet b(m, {0, 2, 3});
  auto full = SecondLevelKnowledge::full(m);
  EXPECT_TRUE(valid_in(full, privacy_formula(a, b)));
  // The direct disclosure is not private.
  EXPECT_FALSE(valid_in(full, privacy_formula(a, a)));
}

TEST(Logic, PossibilityIsDualOfKnowledge) {
  Rng rng(11);
  const std::size_t m = 4;
  for (int t = 0; t < 30; ++t) {
    FormulaPtr p = proposition(FiniteSet::random(m, rng, 0.5), "p");
    FiniteSet s = FiniteSet::random(m, rng, 0.6);
    if (s.is_empty()) continue;
    const std::size_t w = s.min_element();
    EXPECT_EQ(possible(p)->holds(w, s),
              !knows(logical_not(p))->holds(w, s));
  }
}

}  // namespace
}  // namespace epi
