#!/usr/bin/env bash
# Pins every workload family's generator output: the first 20 stream lines
# at the default knobs (seed 2008) must match the checked-in snapshot in
# tests/golden/workloads/<family>.stream byte for byte, so accidental
# generator drift — a reordered rng draw, a renamed record, a changed mix —
# fails loudly instead of silently invalidating benches and goldens.
#
# Usage: workload_golden.sh <epi_workload> <golden_dir>
#
# Refreshing after an INTENTIONAL generator change (call it out in the PR):
#   for f in hospital aggregate policy collusion rectangles; do
#     build/tools/epi_workload --family=$f --emit=stream | head -20 \
#       > tests/golden/workloads/$f.stream
#   done
set -u

EPI_WORKLOAD="$1"
GOLDEN_DIR="$2"
STATUS=0

for family in hospital aggregate policy collusion rectangles; do
  golden="$GOLDEN_DIR/$family.stream"
  if [ ! -f "$golden" ]; then
    echo "FAIL [$family] missing golden snapshot $golden"
    STATUS=1
    continue
  fi
  fresh="$("$EPI_WORKLOAD" --family="$family" --emit=stream | head -20)"
  if [ -z "$fresh" ]; then
    echo "FAIL [$family] generator produced no stream"
    STATUS=1
    continue
  fi
  if ! diff -u "$golden" <(printf '%s\n' "$fresh") > /tmp/workload_golden_diff.$$; then
    echo "FAIL [$family] stream drifted from $golden:"
    cat /tmp/workload_golden_diff.$$
    echo "(intentional change? refresh per the header of $0)"
    STATUS=1
  else
    echo "ok   [$family]"
  fi
  rm -f /tmp/workload_golden_diff.$$
done

exit $STATUS
