// Tests for the laminar (hierarchy) knowledge family and the exact-rational
// distribution backend.
#include <gtest/gtest.h>

#include <memory>

#include "possibilistic/intervals.h"
#include "possibilistic/knowledge.h"
#include "possibilistic/laminar.h"
#include "possibilistic/safe.h"
#include "probabilistic/exact.h"
#include "probabilistic/modularity.h"

namespace epi {
namespace {

TEST(Laminar, ConstructionAndValidation) {
  LaminarSigma tree(8);
  const auto ward_a = tree.add_group(LaminarSigma::kRoot, FiniteSet(8, {0, 1, 2}), "wardA");
  const auto ward_b = tree.add_group(LaminarSigma::kRoot, FiniteSet(8, {3, 4}), "wardB");
  tree.add_group(ward_a, FiniteSet(8, {0, 1}), "roomA1");
  EXPECT_EQ(tree.node_count(), 4u);
  EXPECT_EQ(tree.label(ward_b), "wardB");
  // Overlapping sibling rejected.
  EXPECT_THROW(tree.add_group(LaminarSigma::kRoot, FiniteSet(8, {2, 5})),
               std::invalid_argument);
  // Not nested in parent rejected.
  EXPECT_THROW(tree.add_group(ward_b, FiniteSet(8, {0})), std::invalid_argument);
  EXPECT_THROW(tree.add_group(ward_b, FiniteSet(8)), std::invalid_argument);
}

TEST(Laminar, IntervalIsLowestCommonGroup) {
  LaminarSigma tree(8);
  const auto ward_a = tree.add_group(LaminarSigma::kRoot, FiniteSet(8, {0, 1, 2, 3}));
  tree.add_group(LaminarSigma::kRoot, FiniteSet(8, {4, 5, 6, 7}));
  const auto room1 = tree.add_group(ward_a, FiniteSet(8, {0, 1}));
  tree.add_group(ward_a, FiniteSet(8, {2, 3}));

  EXPECT_EQ(*tree.interval(0, 1), tree.group(room1));
  EXPECT_EQ(*tree.interval(0, 3), tree.group(ward_a));
  EXPECT_EQ(*tree.interval(0, 5), FiniteSet::universe(8));
  EXPECT_EQ(tree.lowest_common_group(0, 1), room1);
}

TEST(Laminar, IsIntersectionClosedFamily) {
  LaminarSigma tree = LaminarSigma::balanced(16, 2);
  // Verify via the generic explicit-family checker.
  ExplicitSigma explicit_family(tree.enumerate());
  EXPECT_TRUE(explicit_family.is_intersection_closed());
  EXPECT_TRUE(tree.contains(FiniteSet::universe(16)));
}

TEST(Laminar, BalancedTreeShape) {
  LaminarSigma tree = LaminarSigma::balanced(8, 1);
  // 8 leaves, 4+2+1 internal = 15 nodes.
  EXPECT_EQ(tree.node_count(), 15u);
  for (std::size_t e = 0; e < 8; ++e) {
    EXPECT_TRUE(tree.contains(FiniteSet::singleton(8, e)));
  }
}

TEST(Laminar, ExactlyOneMinimalIntervalPerWorld) {
  // Ancestors are totally ordered, so the minimal interval to any target set
  // is unique (contrast: rectangles had three in Figure 1).
  LaminarSigma tree = LaminarSigma::balanced(16, 2);
  auto sigma = std::make_shared<LaminarSigma>(tree);
  IntervalOracle oracle(sigma, FiniteSet::universe(16));
  Rng rng(5);
  for (int t = 0; t < 20; ++t) {
    FiniteSet x = FiniteSet::random(16, rng, 0.3);
    if (x.is_empty()) continue;
    for (std::size_t w1 = 0; w1 < 16; ++w1) {
      if (x.contains(w1)) continue;
      EXPECT_EQ(oracle.minimal_intervals(w1, x).size(), 1u) << "w1=" << w1;
    }
  }
}

TEST(Laminar, IntervalSafetyMatchesDefinition) {
  LaminarSigma tree = LaminarSigma::balanced(8, 1);
  auto sigma = std::make_shared<LaminarSigma>(tree);
  IntervalOracle oracle(sigma, FiniteSet::universe(8));
  auto k = SecondLevelKnowledge::product(FiniteSet::universe(8), tree.enumerate());
  Rng rng(7);
  for (int t = 0; t < 60; ++t) {
    FiniteSet a = FiniteSet::random(8, rng, 0.5);
    FiniteSet b = FiniteSet::random(8, rng, 0.5);
    EXPECT_EQ(oracle.safe_minimal_intervals(a, b), safe_possibilistic(k, a, b))
        << "A=" << a.to_string() << " B=" << b.to_string();
  }
}

TEST(Laminar, HospitalScenario) {
  // Worlds = which of 6 patients the leaked record belongs to. The user is
  // assumed to know the patient's ward (a hierarchy group). Disclosing
  // "the record is not patient 0's" (B = complement of {0}) is safe for
  // A = {1} iff ... check against the machinery.
  LaminarSigma tree(6);
  const auto ward_a = tree.add_group(LaminarSigma::kRoot, FiniteSet(6, {0, 1, 2}), "wardA");
  tree.add_group(LaminarSigma::kRoot, FiniteSet(6, {3, 4, 5}), "wardB");
  (void)ward_a;
  auto sigma = std::make_shared<LaminarSigma>(tree);
  IntervalOracle oracle(sigma, FiniteSet::universe(6));
  const FiniteSet a(6, {1});
  // B = "not patient 0": an agent who knows ward A = {0,1,2} is left with
  // {1,2} — still not knowing A. Safe.
  EXPECT_TRUE(oracle.safe_minimal_intervals(a, ~FiniteSet(6, {0})));
  // B = "patient is 1 or 3": the ward-A agent is left with exactly {1} —
  // learns A. Unsafe.
  EXPECT_FALSE(oracle.safe_minimal_intervals(a, FiniteSet(6, {1, 3})));
}

TEST(ExactDistribution, ValidatesExactly) {
  EXPECT_THROW(
      ExactDistribution(1, {Rational(1, 2), Rational(1, 3)}),
      std::invalid_argument);
  EXPECT_THROW(
      ExactDistribution(1, {Rational(3, 2), Rational(-1, 2)}),
      std::invalid_argument);
  EXPECT_NO_THROW(ExactDistribution(1, {Rational(1, 3), Rational(2, 3)}));
}

TEST(ExactDistribution, UniformAndConditioning) {
  WorldSet support(2, {0, 1, 3});
  ExactDistribution d = ExactDistribution::uniform_on(support);
  EXPECT_EQ(d.prob(World{0}), Rational(1, 3));
  EXPECT_EQ(d.prob(World{2}), Rational(0));
  WorldSet b(2, {1, 2, 3});
  EXPECT_EQ(d.prob(b), Rational(2, 3));
  ExactDistribution post = d.conditioned_on(b);
  EXPECT_EQ(post.prob(World{1}), Rational(1, 2));
  EXPECT_EQ(post.prob(World{0}), Rational(0));
  EXPECT_THROW(d.conditioned_on(WorldSet(2, {2})), std::domain_error);
}

TEST(ExactDistribution, ProductGapExactlyZeroOnIndependentPair) {
  // The whole point of the exact backend: independence gives gap EXACTLY 0.
  std::vector<Rational> params = {Rational(1, 3), Rational(2, 7), Rational(1, 2)};
  ExactDistribution d = ExactDistribution::product(params);
  WorldSet bit0(3), bit1(3);
  for (World w = 0; w < 8; ++w) {
    if (world_bit(w, 0)) bit0.insert(w);
    if (world_bit(w, 1)) bit1.insert(w);
  }
  EXPECT_EQ(d.safety_gap(bit0, bit1), Rational(0));
  EXPECT_TRUE(d.is_log_supermodular());
}

TEST(ExactDistribution, Section11GapExact) {
  // The Section 1.1 example computed exactly: with uniform prior,
  // gap = P[AB] - P[A]P[B] = 1/4 - (1/2)(3/4) = -1/8.
  ExactDistribution d = ExactDistribution::uniform_on(WorldSet::universe(2));
  WorldSet a(2);
  WorldSet b(2);
  for (World w = 0; w < 4; ++w) {
    if (world_bit(w, 0)) a.insert(w);
    if (!world_bit(w, 0) || world_bit(w, 1)) b.insert(w);
  }
  EXPECT_EQ(d.safety_gap(a, b), Rational(-1, 8));
  EXPECT_EQ(d.conditional(a, b), Rational(1, 3));
}

TEST(ExactDistribution, AgreesWithDoubleBackend) {
  Rng rng(13);
  for (int t = 0; t < 10; ++t) {
    std::vector<Rational> params;
    for (int i = 0; i < 3; ++i) {
      params.emplace_back(static_cast<std::int64_t>(rng.next_below(100)), 100);
    }
    ExactDistribution exact = ExactDistribution::product(params);
    Distribution approx = exact.to_double();
    WorldSet a = WorldSet::random(3, rng, 0.5);
    WorldSet b = WorldSet::random(3, rng, 0.5);
    EXPECT_NEAR(exact.safety_gap(a, b).to_double(), approx.safety_gap(a, b), 1e-9);
  }
}

TEST(ExactDistribution, SupermodularWitnessIsExactlySupermodular) {
  // Re-derive the Prop 5.2 witness exactly: uniform on a sublattice.
  WorldSet support = WorldSet::from_strings(3, {"000", "100", "011", "111"});
  ExactDistribution d = ExactDistribution::uniform_on(support);
  EXPECT_TRUE(d.is_log_supermodular());
  // P[AB](1 - P[AB]) with one support point in AB: 1/4 * 3/4 = 3/16.
  WorldSet a = WorldSet::from_strings(3, {"100"});
  EXPECT_EQ(d.safety_gap(a, a), Rational(3, 16));
}

}  // namespace
}  // namespace epi
