// The bits::Isa dispatch layer: tier resolution from CPUID and the
// EPI_FORCE_ISA override, and the bit-identity contract of every tier the
// host can run. The per-kernel parity here is deterministic and targeted
// (block boundaries, tails, zero/dense mixes); the randomized sweep lives in
// the `fused-kernels` model check.
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "worlds/dense_bits.h"
#include "worlds/world_set.h"

namespace epi {
namespace {

using bits::Isa;
using bits::IsaTier;
using bits::Word;

/// Restores the pre-test EPI_FORCE_ISA value and re-resolves the active
/// table, so dispatch-state mutations cannot leak across tests.
class IsaEnvGuard {
 public:
  IsaEnvGuard() {
    const char* env = std::getenv("EPI_FORCE_ISA");
    had_ = env != nullptr;
    if (had_) saved_ = env;
  }
  ~IsaEnvGuard() {
    if (had_) {
      ::setenv("EPI_FORCE_ISA", saved_.c_str(), 1);
    } else {
      ::unsetenv("EPI_FORCE_ISA");
    }
    bits::reset_isa();
  }

 private:
  bool had_ = false;
  std::string saved_;
};

TEST(SimdDispatch, ScalarTierAlwaysAvailable) {
  const Isa* scalar = bits::isa_for(IsaTier::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->tier, IsaTier::kScalar);
  EXPECT_STREQ(scalar->name, "scalar");
  // Every slot is populated: the dispatch wrappers never null-check.
  EXPECT_NE(scalar->count, nullptr);
  EXPECT_NE(scalar->intersection_weight_sum, nullptr);
}

TEST(SimdDispatch, ActiveIsaResolvesOnce) {
  IsaEnvGuard guard;
  ::unsetenv("EPI_FORCE_ISA");
  bits::reset_isa();
  const Isa& first = bits::active_isa();
  EXPECT_EQ(&first, &bits::active_isa());  // stable once resolved
  // The resolved tier must actually be runnable on this host.
  EXPECT_EQ(bits::isa_for(first.tier), &first);
}

TEST(SimdDispatch, ForceIsaInstallsAvailableTiersOnly) {
  IsaEnvGuard guard;
  for (IsaTier tier : {IsaTier::kScalar, IsaTier::kAvx2, IsaTier::kAvx512}) {
    const bool available = bits::isa_for(tier) != nullptr;
    EXPECT_EQ(bits::force_isa(tier), available) << bits::to_string(tier);
    if (available) {
      EXPECT_EQ(bits::active_isa().tier, tier);
    }
  }
}

TEST(SimdDispatch, EnvOverrideCapsTheResolvedTier) {
  IsaEnvGuard guard;
  // "scalar" is always runnable, so the cap must resolve to exactly scalar
  // no matter what the host supports.
  ::setenv("EPI_FORCE_ISA", "scalar", 1);
  bits::reset_isa();
  EXPECT_EQ(bits::active_isa().tier, IsaTier::kScalar);

  // Forcing a tier the host may lack must degrade to a runnable one, never
  // crash or exceed the best-supported tier.
  ::setenv("EPI_FORCE_ISA", "avx512", 1);
  bits::reset_isa();
  const Isa& capped = bits::active_isa();
  EXPECT_EQ(bits::isa_for(capped.tier), &capped);

  // Unknown values warn and fall back to the CPUID choice.
  ::setenv("EPI_FORCE_ISA", "quantum", 1);
  bits::reset_isa();
  ::unsetenv("EPI_FORCE_ISA");
  const IsaTier best = bits::active_isa().tier;
  bits::reset_isa();
  EXPECT_EQ(bits::active_isa().tier, best);
}

/// One word pattern family per case: mixes of zero, all-ones, sparse and
/// dense words with a masked tail, sized to exercise the SIMD main loops
/// (blocks of 4 and 8 words) plus every scalar tail length.
struct KernelInputs {
  std::vector<Word> x, y, z;
  std::vector<double> weights;
  std::size_t nw;
  std::size_t m;
};

KernelInputs make_inputs(std::size_t nw, Rng& rng) {
  KernelInputs in;
  in.nw = nw;
  in.m = nw * bits::kWordBits - rng.next_below(bits::kWordBits);
  in.x.resize(nw);
  in.y.resize(nw);
  in.z.resize(nw);
  in.weights.resize(nw * bits::kWordBits);
  for (std::size_t i = 0; i < nw; ++i) {
    const auto word = [&rng]() -> Word {
      switch (rng.next_below(4)) {
        case 0: return 0;
        case 1: return ~Word{0};
        case 2: return rng.next_u64() & rng.next_u64();
        default: return rng.next_u64();
      }
    };
    in.x[i] = word();
    in.y[i] = word();
    in.z[i] = word();
  }
  const Word tail = bits::tail_mask(in.m);
  in.x[nw - 1] &= tail;
  in.y[nw - 1] &= tail;
  in.z[nw - 1] &= tail;
  for (double& w : in.weights) w = rng.next_double();
  return in;
}

TEST(SimdDispatch, EveryAvailableTierMatchesScalarBitForBit) {
  const Isa* ref = bits::isa_for(IsaTier::kScalar);
  ASSERT_NE(ref, nullptr);
  Rng rng(0x51D);
  // 1..19 words: below/at/above the dispatch threshold, straddling both the
  // AVX2 (4-word) and AVX-512 (8-word) block widths with every tail length.
  for (std::size_t nw = 1; nw < 20; ++nw) {
    for (int rep = 0; rep < 8; ++rep) {
      const KernelInputs in = make_inputs(nw, rng);
      for (IsaTier tier : {IsaTier::kAvx2, IsaTier::kAvx512}) {
        const Isa* isa = bits::isa_for(tier);
        if (isa == nullptr) continue;
        SCOPED_TRACE(::testing::Message() << isa->name << " nw=" << nw
                                          << " rep=" << rep);
        EXPECT_EQ(isa->count(in.x.data(), nw), ref->count(in.x.data(), nw));
        EXPECT_EQ(isa->subset_of(in.x.data(), in.y.data(), nw),
                  ref->subset_of(in.x.data(), in.y.data(), nw));
        EXPECT_EQ(isa->disjoint(in.x.data(), in.y.data(), nw),
                  ref->disjoint(in.x.data(), in.y.data(), nw));
        EXPECT_EQ(
            isa->intersection_subset_of(in.x.data(), in.y.data(), in.z.data(), nw),
            ref->intersection_subset_of(in.x.data(), in.y.data(), in.z.data(), nw));
        EXPECT_EQ(isa->intersection_count(in.x.data(), in.y.data(), nw),
                  ref->intersection_count(in.x.data(), in.y.data(), nw));
        EXPECT_EQ(
            isa->intersection3_empty(in.x.data(), in.y.data(), in.z.data(), nw),
            ref->intersection3_empty(in.x.data(), in.y.data(), in.z.data(), nw));
        EXPECT_EQ(isa->union_is_universe(in.x.data(), in.y.data(), nw, in.m),
                  ref->union_is_universe(in.x.data(), in.y.data(), nw, in.m));
        // Exact double equality on purpose: the SIMD weight sums keep the
        // scalar accumulation order, so the results are the same bits.
        EXPECT_EQ(isa->masked_weight_sum(in.x.data(), nw, in.weights.data()),
                  ref->masked_weight_sum(in.x.data(), nw, in.weights.data()));
        EXPECT_EQ(isa->intersection_weight_sum(in.x.data(), in.y.data(), nw,
                                               in.weights.data()),
                  ref->intersection_weight_sum(in.x.data(), in.y.data(), nw,
                                               in.weights.data()));
      }
    }
  }
}

TEST(SimdDispatch, SubsetAndUniverseEdgeCases) {
  const Isa* ref = bits::isa_for(IsaTier::kScalar);
  // A ⊆ A, disjoint with its complement, and the complement pair covers the
  // universe — checked through the public dispatched entry points so the
  // active (SIMD) tier decides them exactly like the scalar tier.
  for (std::size_t m : {1ul, 63ul, 64ul, 65ul, 255ul, 256ul, 257ul, 1024ul}) {
    const std::size_t nw = bits::words_for(m);
    std::vector<Word> a(nw, 0), comp(nw, 0);
    Rng rng(m);
    for (std::size_t i = 0; i < nw; ++i) a[i] = rng.next_u64();
    a[nw - 1] &= bits::tail_mask(m);
    bits::complement(comp.data(), a.data(), nw, m);
    EXPECT_TRUE(bits::subset_of(a.data(), a.data(), nw)) << m;
    EXPECT_TRUE(bits::disjoint(a.data(), comp.data(), nw)) << m;
    EXPECT_TRUE(bits::union_is_universe(a.data(), comp.data(), nw, m)) << m;
    EXPECT_EQ(bits::count(a.data(), nw) + bits::count(comp.data(), nw), m);
    EXPECT_EQ(bits::count(a.data(), nw), ref->count(a.data(), nw));
  }
}

}  // namespace
}  // namespace epi
