#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/eigen.h"
#include "linalg/least_squares.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace epi {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m.at(i, j) = 2.0 * rng.next_double() - 1.0;
    }
  }
  return m;
}

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix a = random_matrix(n, n, rng);
  Matrix spd = a * a.transpose();
  for (std::size_t i = 0; i < n; ++i) spd.at(i, i) += 0.5;
  return spd;
}

TEST(VecOps, DotNormAxpy) {
  Vec v{1, 2, 3}, w{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(v, w), 12.0);
  EXPECT_DOUBLE_EQ(norm(Vec{3, 4}), 5.0);
  Vec y{1, 1, 1};
  axpy(2.0, v, y);
  EXPECT_EQ(y, (Vec{3, 5, 7}));
  EXPECT_THROW(dot(v, Vec{1}), std::invalid_argument);
}

TEST(Matrix, BasicOps) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix i = Matrix::identity(2);
  Matrix prod = a * i;
  EXPECT_DOUBLE_EQ(prod.at(1, 0), 3.0);
  Matrix sum = a + a;
  EXPECT_DOUBLE_EQ(sum.at(0, 1), 4.0);
  Matrix diff = a - a;
  EXPECT_DOUBLE_EQ(diff.frobenius_norm(), 0.0);
  Matrix t = a.transpose();
  EXPECT_DOUBLE_EQ(t.at(0, 1), 3.0);
  Vec mv = a * Vec{1, 1};
  EXPECT_EQ(mv, (Vec{3, 7}));
  EXPECT_FALSE(a.is_symmetric());
  a.symmetrize();
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_DOUBLE_EQ(a.at(0, 1), 2.5);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  EXPECT_NO_THROW(a + b);
  EXPECT_THROW(a + Matrix(3, 2), std::invalid_argument);
}

TEST(Cholesky, FactorizesAndSolves) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 5;
    Matrix spd = random_spd(n, rng);
    auto l = cholesky(spd);
    ASSERT_TRUE(l.has_value());
    // L L^T == A.
    EXPECT_LT(((*l) * l->transpose() - spd).frobenius_norm(), 1e-9);
    // Solve against a random rhs.
    Vec b(n);
    for (double& x : b) x = rng.next_double();
    Vec x = cholesky_solve(*l, b);
    Vec ax = spd * x;
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
  }
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(1, 1) = -1;
  EXPECT_FALSE(cholesky(m).has_value());
}

TEST(Eigen, DiagonalizesRandomSymmetric) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6;
    Matrix a = random_matrix(n, n, rng);
    a.symmetrize();
    EigenDecomposition d = jacobi_eigen(a);
    // Ascending eigenvalues.
    for (std::size_t i = 1; i < n; ++i) EXPECT_LE(d.values[i - 1], d.values[i] + 1e-12);
    // Reconstruction V diag V^T = A.
    Matrix recon(n, n);
    for (std::size_t e = 0; e < n; ++e) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          recon.at(i, j) += d.values[e] * d.vectors.at(i, e) * d.vectors.at(j, e);
        }
      }
    }
    EXPECT_LT((recon - a).frobenius_norm(), 1e-8);
    // Orthonormality.
    Matrix vtv = d.vectors.transpose() * d.vectors;
    EXPECT_LT((vtv - Matrix::identity(n)).frobenius_norm(), 1e-8);
  }
}

TEST(Eigen, PsdProjection) {
  Matrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(1, 1) = -2;
  Matrix p = project_psd(m);
  EXPECT_NEAR(p.at(0, 0), 1.0, 1e-10);
  EXPECT_NEAR(p.at(1, 1), 0.0, 1e-10);
  EXPECT_TRUE(is_psd(p));
  EXPECT_FALSE(is_psd(m));
  EXPECT_NEAR(min_eigenvalue(m), -2.0, 1e-10);
}

TEST(Eigen, ProjectionIsIdempotentAndClosest) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    Matrix a = random_matrix(5, 5, rng);
    a.symmetrize();
    Matrix p = project_psd(a);
    EXPECT_TRUE(is_psd(p, 1e-8));
    EXPECT_LT((project_psd(p) - p).frobenius_norm(), 1e-8);
    // Projection of a PSD matrix is itself.
    Matrix spd = random_spd(5, rng);
    EXPECT_LT((project_psd(spd) - spd).frobenius_norm(), 1e-8);
  }
}

TEST(LeastSquares, RecoversExactSolution) {
  Rng rng(4);
  Matrix a = random_matrix(6, 3, rng);
  Vec x_true{1.0, -2.0, 0.5};
  Vec b = a * x_true;
  Vec x = solve_least_squares(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(LeastSquares, MinNormSolvesUnderdetermined) {
  Rng rng(5);
  Matrix a = random_matrix(2, 5, rng);
  Vec b{1.0, -1.0};
  Vec x = solve_min_norm(a, b);
  Vec ax = a * x;
  EXPECT_NEAR(ax[0], 1.0, 1e-6);
  EXPECT_NEAR(ax[1], -1.0, 1e-6);
}

TEST(AffineProjector, ProjectsOntoSubspace) {
  Rng rng(6);
  Matrix a = random_matrix(3, 8, rng);
  Vec x0(8);
  for (double& v : x0) v = rng.next_double();
  Vec b = a * Vec(8, 0.25);  // consistent rhs
  AffineProjector proj(a, b);
  Vec x = proj.project(x0);
  EXPECT_LT(proj.residual(x), 1e-6);
  // Projection is idempotent.
  Vec x2 = proj.project(x);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x2[i], 1e-8);
  // Fixes points already in the subspace.
  Vec inside = proj.project(Vec(8, 0.0));
  Vec again = proj.project(inside);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(inside[i], again[i], 1e-8);
}

}  // namespace
}  // namespace epi
