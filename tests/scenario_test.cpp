// Tests for the scenario script interpreter.
#include <gtest/gtest.h>

#include "core/report.h"
#include "core/scenario.h"

namespace epi {
namespace {

const char kBasicScenario[] = R"(
# Bob's story
record bob_hiv
record bob_transfusion
insert bob_transfusion
query alice @2005-03-02 bob_hiv
insert bob_hiv
query mallory @2007-02-20 bob_hiv
query dave bob_hiv -> bob_transfusion
audit bob_hiv
)";

TEST(Scenario, BasicRun) {
  const ScenarioResult r = run_scenario(kBasicScenario);
  EXPECT_EQ(r.universe.size(), 2u);
  EXPECT_EQ(r.log.size(), 3u);
  ASSERT_EQ(r.reports.size(), 1u);
  const AuditReport& report = r.reports[0];
  EXPECT_EQ(report.audit_query, "bob_hiv");
  ASSERT_EQ(report.per_disclosure.size(), 3u);
  EXPECT_EQ(report.per_disclosure[0].verdict, Verdict::kSafe);    // alice, pre-infection
  EXPECT_EQ(report.per_disclosure[1].verdict, Verdict::kUnsafe);  // mallory
  EXPECT_EQ(report.per_disclosure[2].verdict, Verdict::kSafe);    // dave's implication
  // Query trace records answers.
  ASSERT_EQ(r.query_trace.size(), 3u);
  EXPECT_EQ(r.query_trace[0], "alice: bob_hiv -> false");
  EXPECT_EQ(r.query_trace[1], "mallory: bob_hiv -> true");
  // Final state: both records present.
  EXPECT_EQ(r.final_state, world_from_string("11"));
}

TEST(Scenario, PriorDirectiveSwitchesFamilies) {
  const char* text = R"(
record r1
record r2
insert r1
query alice !r2
prior product
audit r1
prior unrestricted
audit r1
)";
  AuditorOptions options;
  options.enable_sos = false;
  const ScenarioResult r = run_scenario(text, options);
  ASSERT_EQ(r.reports.size(), 2u);
  EXPECT_EQ(r.reports[0].prior, PriorAssumption::kProduct);
  EXPECT_EQ(r.reports[1].prior, PriorAssumption::kUnrestricted);
  // The negative answer is safe under product priors, unsafe unrestricted.
  EXPECT_EQ(r.reports[0].per_disclosure[0].verdict, Verdict::kSafe);
  EXPECT_EQ(r.reports[1].per_disclosure[0].verdict, Verdict::kUnsafe);
}

TEST(Scenario, SubcubePriorAccepted) {
  const char* text = R"(
record r1
record r2
insert r1
insert r2
query alice r1 -> r2
prior subcube-knowledge
audit r1
)";
  const ScenarioResult r = run_scenario(text);
  ASSERT_EQ(r.reports.size(), 1u);
  EXPECT_EQ(r.reports[0].per_disclosure[0].verdict, Verdict::kSafe);
  EXPECT_EQ(r.reports[0].per_disclosure[0].method, "subcube-intervals(prepared)");
}

TEST(Scenario, RemoveDirective) {
  const char* text = R"(
record r1
insert r1
remove r1
query u r1
)";
  const ScenarioResult r = run_scenario(text);
  EXPECT_EQ(r.query_trace[0], "u: r1 -> false");
  EXPECT_EQ(r.final_state, 0u);
}

TEST(Scenario, ErrorsCarryLineNumbers) {
  try {
    run_scenario("record r1\nbogus directive\n");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(Scenario, ErrorCases) {
  EXPECT_THROW(run_scenario("insert r1\n"), ScenarioError);  // no records
  EXPECT_THROW(run_scenario("record r1\nquery u\n"), ScenarioError);
  EXPECT_THROW(run_scenario("record r1\nquery u @t\n"), ScenarioError);
  EXPECT_THROW(run_scenario("record r1\naudit\n"), ScenarioError);
  EXPECT_THROW(run_scenario("record r1\nprior bogus\n"), ScenarioError);
  EXPECT_THROW(run_scenario("record r1\nrecord\n"), ScenarioError);
  EXPECT_THROW(run_scenario("record r1\ninsert ghost\n"), ScenarioError);
  EXPECT_THROW(run_scenario("record r1\ninsert r1\nrecord r2\n"), ScenarioError);
  // Parse errors inside query text surface as ScenarioError too.
  EXPECT_THROW(run_scenario("record r1\nquery u r1 &&& r1\n"), ScenarioError);
}

TEST(Scenario, CommentsAndBlankLinesIgnored) {
  const ScenarioResult r = run_scenario("# nothing\n\nrecord r1\n# more\n");
  EXPECT_EQ(r.universe.size(), 1u);
  EXPECT_TRUE(r.reports.empty());
}

// A scenario whose audit runs straddle a database change: batching must
// flush at the `insert`, so both batches see exactly the state the
// unbatched run would.
const char kBatchScenario[] = R"(
record bob_hiv
record bob_transfusion
insert bob_transfusion
query alice bob_hiv
query dave bob_hiv -> bob_transfusion
prior product
audit bob_hiv
audit !bob_hiv
audit bob_transfusion
insert bob_hiv
query mallory bob_hiv
audit bob_hiv
audit bob_hiv & bob_transfusion
)";

TEST(Scenario, BatchedAuditsMatchUnbatchedRun) {
  AuditorOptions auditor;
  auditor.enable_sos = false;
  ScenarioOptions batched(auditor);
  batched.batch_audits = true;

  const ScenarioResult plain = run_scenario(kBatchScenario, auditor);
  const ScenarioResult batch = run_scenario(kBatchScenario, batched);
  ASSERT_EQ(plain.reports.size(), 5u);
  ASSERT_EQ(batch.reports.size(), plain.reports.size());
  EXPECT_EQ(batch.final_state, plain.final_state);
  EXPECT_EQ(batch.query_trace, plain.query_trace);
  for (std::size_t i = 0; i < plain.reports.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "report[" << i << "]");
    EXPECT_EQ(batch.reports[i].audit_query, plain.reports[i].audit_query);
    EXPECT_EQ(batch.reports[i].prior, plain.reports[i].prior);
    EXPECT_EQ(format_report(batch.reports[i]),
              format_report(plain.reports[i]));
  }
}

TEST(Scenario, BatchedAuditParseErrorNamesItsOwnLine) {
  ScenarioOptions options;
  options.batch_audits = true;
  try {
    run_scenario("record r1\ninsert r1\naudit r1\naudit r1 &&& r1\n", options);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.line(), 4);  // the malformed audit, not the flush point
  }
}

}  // namespace
}  // namespace epi
