#!/bin/sh
# Byte-identical `--batch` parity (registered as CTest `batch_cli_parity`):
# audit_cli with --batch must print exactly what the unbatched run prints on
# every corpus scenario — batching consecutive audit directives through
# Auditor::audit_many is a throughput decision, never an output decision.
# Checked at 1 and 4 worker threads so the batched sweep's thread fan-out is
# pinned deterministic at the same time.
# Usage: batch_cli_parity.sh <path-to-audit_cli> <scenario-dir>
set -u

cli="${1:?usage: batch_cli_parity.sh <audit_cli> <scenario-dir>}"
scenarios="${2:?missing scenario dir}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

check() {
  name="$1"
  shift
  for threads in 1 4; do
    "$cli" --threads "$threads" "$@" > "$tmp/$name.plain.txt" 2>&1 \
      || fail "$name (--threads $threads) exited nonzero"
    "$cli" --batch --threads "$threads" "$@" > "$tmp/$name.batch.txt" 2>&1 \
      || fail "$name (--batch --threads $threads) exited nonzero"
    if ! cmp -s "$tmp/$name.batch.txt" "$tmp/$name.plain.txt"; then
      diff "$tmp/$name.plain.txt" "$tmp/$name.batch.txt" | head -20 >&2
      fail "$name (--threads $threads): --batch output differs"
    fi
  done
  echo "  $name: --batch byte-identical (threads 1, 4)"
}

check builtin
for scenario in "$scenarios"/*.audit; do
  check "$(basename "$scenario" .audit)" "$scenario"
done

echo "batch CLI parity OK"
