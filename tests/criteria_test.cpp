#include <gtest/gtest.h>

#include "criteria/box_necessary.h"
#include "criteria/cancellation.h"
#include "criteria/miklau_suciu.h"
#include "criteria/monotonicity.h"
#include "criteria/pipeline.h"
#include "criteria/supermodular.h"
#include "criteria/unconditional.h"
#include "probabilistic/modularity.h"
#include "probabilistic/product.h"
#include "worlds/monotone.h"

namespace epi {
namespace {

// Exhaustive-ish maximization of the product-prior safety gap on a dense
// parameter grid (adequate ground truth for n <= 3 in tests).
double max_gap_grid(const WorldSet& a, const WorldSet& b, int steps = 20) {
  const unsigned n = a.n();
  std::vector<double> p(n, 0.0);
  double best = -1.0;
  const std::size_t total = [&] {
    std::size_t t = 1;
    for (unsigned i = 0; i < n; ++i) t *= steps + 1;
    return t;
  }();
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t c = code;
    for (unsigned i = 0; i < n; ++i) {
      p[i] = static_cast<double>(c % (steps + 1)) / steps;
      c /= steps + 1;
    }
    best = std::max(best, ProductDistribution(p).safety_gap(a, b));
  }
  return best;
}

WorldSet bit_set(unsigned n, unsigned i) {
  WorldSet s(n);
  for (World w = 0; w < (World{1} << n); ++w) {
    if (world_bit(w, i)) s.insert(w);
  }
  return s;
}

TEST(Unconditional, Theorem311Conditions) {
  WorldSet a(2, {0}), b(2, {1, 2});
  EXPECT_TRUE(unconditionally_safe(a, b));  // disjoint
  WorldSet a2(2, {0, 1}), b2(2, {1, 2, 3});
  EXPECT_TRUE(unconditionally_safe(a2, b2));  // union is Omega
  WorldSet a3(2, {0, 1}), b3(2, {1, 2});
  EXPECT_FALSE(unconditionally_safe(a3, b3));
  EXPECT_TRUE(unconditionally_safe_known_world(a3, b3, 2));   // w* in B - A
  EXPECT_FALSE(unconditionally_safe_known_world(a3, b3, 1));  // w* in A ∩ B
}

TEST(MiklauSuciu, DisjointCoordinatesAreIndependent) {
  const unsigned n = 4;
  WorldSet a = bit_set(n, 0) & bit_set(n, 1);  // depends on coords 0,1
  WorldSet b = bit_set(n, 2) | bit_set(n, 3);  // depends on coords 2,3
  EXPECT_TRUE(miklau_suciu_independent(a, b));
  EXPECT_EQ(shared_critical_coordinates(a, b), 0u);
  // Independence under arbitrary random product priors.
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    auto p = ProductDistribution::random(n, rng);
    EXPECT_NEAR(p.safety_gap(a, b), 0.0, 1e-12);
  }
}

TEST(MiklauSuciu, SharedCriticalCoordinateDetected) {
  const unsigned n = 3;
  WorldSet a = bit_set(n, 0);
  WorldSet b = bit_set(n, 0) | bit_set(n, 1);
  EXPECT_FALSE(miklau_suciu_independent(a, b));
  EXPECT_EQ(shared_critical_coordinates(a, b), 1u);
}

TEST(MiklauSuciu, PaperCounterexampleAfterTheorem57) {
  // Safe_{Pi_m0}(X1, X1-bar ∪ X2) holds but X1 is not independent of it.
  const unsigned n = 2;
  WorldSet x1 = bit_set(n, 0);
  WorldSet b = (~x1) | bit_set(n, 1);
  EXPECT_FALSE(miklau_suciu_independent(x1, b));
  EXPECT_LE(max_gap_grid(x1, b), 1e-12);  // yet epistemically safe
}

TEST(Monotonicity, FindsTrivialMask) {
  const unsigned n = 3;
  WorldSet a = up_closure(WorldSet(n, {0b011}));
  WorldSet b = down_closure(WorldSet(n, {0b100}));
  auto z = monotonicity_mask(a, b);
  ASSERT_TRUE(z.has_value());
  EXPECT_EQ(*z, 0u);
  EXPECT_TRUE(upset_downset_criterion(a, b));
}

TEST(Monotonicity, FindsNontrivialMask) {
  const unsigned n = 3;
  WorldSet a0 = up_closure(WorldSet(n, {0b011}));
  WorldSet b0 = down_closure(WorldSet(n, {0b100}));
  const World mask = 0b101;
  WorldSet a = a0.xor_with(mask);
  WorldSet b = b0.xor_with(mask);
  EXPECT_FALSE(upset_downset_criterion(a, b));
  auto z = monotonicity_mask(a, b);
  ASSERT_TRUE(z.has_value());
  // The recovered mask must actually work.
  EXPECT_TRUE(is_upset(a.xor_with(*z)));
  EXPECT_TRUE(is_downset(b.xor_with(*z)));
}

TEST(Monotonicity, ImpliesProductSafety) {
  Rng rng(7);
  const unsigned n = 4;
  int passed = 0;
  for (int trial = 0; trial < 300 && passed < 40; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.3);
    WorldSet b = WorldSet::random(n, rng, 0.3);
    const World mask = static_cast<World>(rng.next_bits(n));
    a = up_closure(a).xor_with(mask);
    b = down_closure(b).xor_with(mask);
    if (!monotonicity_criterion(a, b)) continue;
    ++passed;
    for (int i = 0; i < 20; ++i) {
      auto p = ProductDistribution::random(n, rng);
      EXPECT_LE(p.safety_gap(a, b), 1e-10) << "trial " << trial;
    }
  }
  EXPECT_GT(passed, 20);
}

TEST(Corollary55, UpsetDownsetSafeForLogSupermodular) {
  Rng rng(11);
  const unsigned n = 4;
  int passed = 0;
  for (int trial = 0; trial < 100 && passed < 25; ++trial) {
    WorldSet a = up_closure(WorldSet::random(n, rng, 0.2));
    WorldSet b = down_closure(WorldSet::random(n, rng, 0.2));
    if (!upset_downset_criterion(a, b)) continue;
    ++passed;
    for (int i = 0; i < 10; ++i) {
      auto p = random_log_supermodular(n, rng);
      EXPECT_LE(p.safety_gap(a, b), 1e-9) << "trial " << trial;
    }
  }
  EXPECT_GT(passed, 10);
}

TEST(Cancellation, Remark512CounterexampleFailsCriterionButIsSafe) {
  const unsigned n = 3;
  WorldSet a = WorldSet::from_strings(n, {"011", "100", "110", "111"});
  WorldSet b = WorldSet::from_strings(n, {"010", "101", "110", "111"});
  auto result = cancellation_criterion(a, b);
  EXPECT_FALSE(result.holds);
  ASSERT_TRUE(result.failing_vector.has_value());
  EXPECT_EQ(result.failing_vector->to_string(n), "***");
  EXPECT_EQ(result.positive_pairs, 0);
  EXPECT_EQ(result.negative_pairs, 2);
  // ... and yet the pair is Pi_m0-safe (Remark 5.12).
  EXPECT_LE(max_gap_grid(a, b), 1e-12);
}

TEST(Cancellation, SoundOnRandomInstances) {
  // Whenever the criterion holds, no product prior attains a positive gap.
  Rng rng(13);
  const unsigned n = 4;
  int held = 0;
  for (int trial = 0; trial < 400 && held < 40; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    if (!cancellation_criterion(a, b).holds) continue;
    ++held;
    for (int i = 0; i < 30; ++i) {
      auto p = ProductDistribution::random(n, rng);
      EXPECT_LE(p.safety_gap(a, b), 1e-10)
          << "A=" << a.to_string() << " B=" << b.to_string();
    }
  }
  EXPECT_GT(held, 10);
}

TEST(Theorem511, MiklauSuciuImpliesCancellation) {
  // Build A on coordinates {0,1} and B on {2,3}, so they share no critical
  // coordinates by construction.
  Rng rng(17);
  const unsigned n = 4;
  int checked = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const World a_patterns = static_cast<World>(rng.next_bits(4));  // subset of {0,1}^2
    const World b_patterns = static_cast<World>(rng.next_bits(4));
    WorldSet a(n), b(n);
    for (World w = 0; w < 16; ++w) {
      if ((a_patterns >> (w & 3)) & 1) a.insert(w);
      if ((b_patterns >> ((w >> 2) & 3)) & 1) b.insert(w);
    }
    if (!miklau_suciu_independent(a, b)) continue;  // degenerate randomness only
    ++checked;
    EXPECT_TRUE(cancellation_criterion(a, b).holds)
        << "A=" << a.to_string() << " B=" << b.to_string();
  }
  EXPECT_GT(checked, 50);
}

TEST(Theorem511, MonotonicityImpliesCancellation) {
  Rng rng(19);
  const unsigned n = 4;
  int checked = 0;
  for (int trial = 0; trial < 300 && checked < 30; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.3);
    WorldSet b = WorldSet::random(n, rng, 0.3);
    const World mask = static_cast<World>(rng.next_bits(n));
    a = up_closure(a).xor_with(mask);
    b = down_closure(b).xor_with(mask);
    if (!monotonicity_criterion(a, b)) continue;
    ++checked;
    EXPECT_TRUE(cancellation_criterion(a, b).holds)
        << "A=" << a.to_string() << " B=" << b.to_string();
  }
  EXPECT_GT(checked, 10);
}

TEST(BoxNecessary, ViolationYieldsPositiveGapWitness) {
  Rng rng(23);
  const unsigned n = 4;
  int violated = 0;
  for (int trial = 0; trial < 200 && violated < 40; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    auto result = box_necessary_criterion(a, b);
    if (result.holds) continue;
    ++violated;
    ASSERT_TRUE(result.witness.has_value());
    EXPECT_GT(result.witness->safety_gap(a, b), 1e-12)
        << "A=" << a.to_string() << " B=" << b.to_string();
  }
  EXPECT_GT(violated, 10);
}

TEST(BoxNecessary, CancellationImpliesBoxCriterion) {
  // sufficient ⊆ safe ⊆ necessary.
  Rng rng(29);
  const unsigned n = 4;
  int held = 0;
  for (int trial = 0; trial < 600 && held < 40; ++trial) {
    // Mix raw random pairs with monotone-masked pairs (which pass the
    // cancellation criterion by Theorem 5.11) to get enough positives.
    WorldSet a = WorldSet::random(n, rng, 0.4);
    WorldSet b = WorldSet::random(n, rng, 0.4);
    if (trial % 2 == 0) {
      const World mask = static_cast<World>(rng.next_bits(n));
      a = up_closure(a).xor_with(mask);
      b = down_closure(b).xor_with(mask);
    }
    if (!cancellation_criterion(a, b).holds) continue;
    ++held;
    EXPECT_TRUE(box_necessary_criterion(a, b).holds)
        << "A=" << a.to_string() << " B=" << b.to_string();
  }
  EXPECT_GT(held, 10);
}

TEST(BoxNecessary, ExactOnGridGroundTruth) {
  // For n = 3, compare the necessary criterion against grid ground truth:
  // grid-unsafe pairs must violate the criterion's premise direction
  // (criterion holds => grid gap <= 0 cannot be asserted — it is only
  // necessary — but grid gap > 0 must imply criterion may still hold; what
  // MUST hold: criterion violated => grid gap > 0).
  Rng rng(31);
  const unsigned n = 3;
  for (int trial = 0; trial < 60; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    auto result = box_necessary_criterion(a, b);
    if (!result.holds) {
      EXPECT_GT(max_gap_grid(a, b), 0.0)
          << "A=" << a.to_string() << " B=" << b.to_string();
    }
  }
}

TEST(Supermodular, SufficientImpliesSafetyOnIsingPriors) {
  Rng rng(37);
  const unsigned n = 4;
  int held = 0;
  for (int trial = 0; trial < 500 && held < 25; ++trial) {
    WorldSet a = up_closure(WorldSet::random(n, rng, 0.15));
    WorldSet b = down_closure(WorldSet::random(n, rng, 0.15));
    if (rng.next_bool()) std::swap(a, b);
    if (!supermodular_sufficient(a, b)) continue;
    ++held;
    for (int i = 0; i < 10; ++i) {
      auto p = random_log_supermodular(n, rng);
      EXPECT_LE(p.safety_gap(a, b), 1e-9)
          << "A=" << a.to_string() << " B=" << b.to_string();
    }
  }
  EXPECT_GT(held, 10);
}

TEST(Supermodular, Corollary55ImpliesSufficientCriterion) {
  Rng rng(41);
  const unsigned n = 4;
  int checked = 0;
  for (int trial = 0; trial < 200 && checked < 30; ++trial) {
    WorldSet a = up_closure(WorldSet::random(n, rng, 0.2));
    WorldSet b = down_closure(WorldSet::random(n, rng, 0.2));
    if (!upset_downset_criterion(a, b)) continue;
    ++checked;
    EXPECT_TRUE(supermodular_sufficient(a, b));
  }
  EXPECT_GT(checked, 10);
}

TEST(Supermodular, NecessaryViolationContradictsSufficient) {
  // The necessary and sufficient criteria can never disagree in the
  // "sufficient says safe, necessary says unsafe" direction.
  Rng rng(43);
  const unsigned n = 4;
  for (int trial = 0; trial < 300; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    if (supermodular_sufficient(a, b)) {
      EXPECT_TRUE(supermodular_necessary(a, b))
          << "A=" << a.to_string() << " B=" << b.to_string();
    }
  }
}

TEST(FourFunctions, PointwiseChecker) {
  // alpha = beta = gamma = delta = uniform satisfies the pointwise condition.
  const unsigned n = 2;
  std::vector<double> u(4, 0.25);
  EXPECT_TRUE(four_functions_pointwise(u, u, u, u, n));
  // gamma = 0 with positive alpha, beta fails.
  std::vector<double> zero(4, 0.0);
  EXPECT_FALSE(four_functions_pointwise(u, u, zero, u, n));
  EXPECT_THROW(four_functions_pointwise(u, u, u, std::vector<double>(3), n),
               std::invalid_argument);
}

TEST(Pipeline, UnrestrictedAlwaysDefinite) {
  Rng rng(47);
  const unsigned n = 4;
  for (int trial = 0; trial < 100; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    auto r = run_criteria(unrestricted_criteria(), a, b, "unreachable");
    EXPECT_NE(r.verdict, Verdict::kUnknown);
    if (r.verdict == Verdict::kUnsafe) {
      ASSERT_TRUE(r.witness_distribution.has_value());
      EXPECT_GT(r.witness_distribution->safety_gap(a, b), 0.0);
    }
  }
}

TEST(Pipeline, ProductPipelineSound) {
  Rng rng(53);
  const unsigned n = 3;
  int safe_count = 0, unsafe_count = 0, unknown_count = 0;
  for (int trial = 0; trial < 150; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    auto r = run_criteria(product_criteria(), a, b,
                          "exhausted-combinatorial-criteria");
    const double grid_max = max_gap_grid(a, b);
    switch (r.verdict) {
      case Verdict::kSafe:
        ++safe_count;
        EXPECT_LE(grid_max, 1e-9) << "criterion=" << r.criterion
                                  << " A=" << a.to_string() << " B=" << b.to_string();
        break;
      case Verdict::kUnsafe:
        ++unsafe_count;
        ASSERT_TRUE(r.witness_product.has_value());
        EXPECT_GT(r.witness_product->safety_gap(a, b), 0.0);
        EXPECT_GT(grid_max, 0.0);
        break;
      case Verdict::kUnknown:
        ++unknown_count;
        break;
    }
  }
  EXPECT_GT(safe_count, 10);
  EXPECT_GT(unsafe_count, 10);
}

TEST(Pipeline, SupermodularPipelineSound) {
  Rng rng(59);
  const unsigned n = 4;
  for (int trial = 0; trial < 150; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.4);
    WorldSet b = WorldSet::random(n, rng, 0.4);
    auto r = run_criteria(supermodular_criteria(), a, b,
                          "exhausted-supermodular-criteria");
    if (r.verdict == Verdict::kSafe) {
      for (int i = 0; i < 10; ++i) {
        auto p = random_log_supermodular(n, rng);
        EXPECT_LE(p.safety_gap(a, b), 1e-9) << "criterion=" << r.criterion;
      }
    } else if (r.verdict == Verdict::kUnsafe) {
      if (r.witness_distribution) {
        EXPECT_TRUE(is_log_supermodular(*r.witness_distribution));
        EXPECT_GT(r.witness_distribution->safety_gap(a, b), 0.0);
      } else {
        ASSERT_TRUE(r.witness_product.has_value());
        EXPECT_GT(r.witness_product->safety_gap(a, b), 0.0);
      }
    }
  }
}

TEST(Verdict, ToString) {
  EXPECT_EQ(to_string(Verdict::kSafe), "safe");
  EXPECT_EQ(to_string(Verdict::kUnsafe), "unsafe");
  EXPECT_EQ(to_string(Verdict::kUnknown), "unknown");
}

}  // namespace
}  // namespace epi
