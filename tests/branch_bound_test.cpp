// Tests for the certified branch-and-bound nonnegativity prover.
#include <gtest/gtest.h>

#include "optimize/branch_bound.h"
#include "optimize/coordinate_ascent.h"
#include "util/rng.h"

namespace epi {
namespace {

TEST(IntervalBounds, EnclosesTrueRange) {
  // f = x0^2 - x1 on [0,1]^2: range [-1, 1].
  const std::size_t s = 2;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial y = Polynomial::variable(s, 1);
  Polynomial f = x * x - y;
  auto [lo, hi] = interval_bounds(f, {0, 0}, {1, 1});
  EXPECT_DOUBLE_EQ(lo, -1.0);
  EXPECT_DOUBLE_EQ(hi, 1.0);
  // On [0.5,1] x [0, 0.25]: range [0.25 - 0.25, 1 - 0] = [0, 1].
  auto [lo2, hi2] = interval_bounds(f, {0.5, 0.0}, {1.0, 0.25});
  EXPECT_DOUBLE_EQ(lo2, 0.0);
  EXPECT_DOUBLE_EQ(hi2, 1.0);
  EXPECT_THROW(interval_bounds(f, {0.0}, {1.0, 1.0}), std::invalid_argument);
}

TEST(IntervalBounds, SoundOnRandomPolynomials) {
  Rng rng(3);
  const std::size_t s = 3;
  for (int t = 0; t < 20; ++t) {
    Polynomial f(s);
    for (const Monomial& m : monomials_up_to_degree(s, 3)) {
      if (rng.next_bool(0.4)) f.add_term(m, 2.0 * rng.next_double() - 1.0);
    }
    std::vector<double> lo(s), hi(s);
    for (std::size_t i = 0; i < s; ++i) {
      const double a = rng.next_double(), b = rng.next_double();
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    auto [bound_lo, bound_hi] = interval_bounds(f, lo, hi);
    for (int p = 0; p < 50; ++p) {
      std::vector<double> point(s);
      for (std::size_t i = 0; i < s; ++i) {
        point[i] = lo[i] + (hi[i] - lo[i]) * rng.next_double();
      }
      const double v = f.eval(point);
      EXPECT_GE(v, bound_lo - 1e-9);
      EXPECT_LE(v, bound_hi + 1e-9);
    }
  }
}

TEST(BranchBound, CertifiesNonnegativePolynomials) {
  const std::size_t s = 2;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial y = Polynomial::variable(s, 1);
  // (x - y)^2 is nonnegative with a whole zero line — the hard shape.
  auto r = certify_nonneg_on_box((x - y).pow(2), {1e-4, 200000});
  EXPECT_EQ(r.verdict, Verdict::kSafe);
  // x(1-x) + y(1-y): nonnegative, zeros only at corners.
  auto r2 = certify_nonneg_on_box(x - x * x + y - y * y, {1e-6, 200000});
  EXPECT_EQ(r2.verdict, Verdict::kSafe);
}

TEST(BranchBound, RefutesNegativePolynomials) {
  const std::size_t s = 2;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial f = Polynomial::constant(s, 0.2) - x;  // negative for x > 0.2
  auto r = certify_nonneg_on_box(f, {1e-6, 100000});
  EXPECT_EQ(r.verdict, Verdict::kUnsafe);
  ASSERT_FALSE(r.refutation_point.empty());
  EXPECT_LT(f.eval(r.refutation_point), -1e-6);
}

TEST(BranchBound, ProductSafetyAgreesWithAscent) {
  Rng rng(17);
  const unsigned n = 3;
  int certified = 0, refuted = 0;
  for (int t = 0; t < 40; ++t) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    // Margins at n = 3 can vanish on codimension-1 surfaces, so certified
    // slack is kept at 1e-4 to bound the subdivision work.
    BranchBoundOptions options;
    options.epsilon = 1e-4;
    options.max_boxes = 200000;
    const BranchBoundResult bb = branch_bound_product_safety(a, b, options);
    AscentOptions ascent;
    ascent.seed = 900 + t;
    const double gap = maximize_product_gap(a, b, ascent).max_gap;
    if (bb.verdict == Verdict::kSafe) {
      ++certified;
      // Certified: no prior can gain more than epsilon.
      EXPECT_LE(gap, options.epsilon + 1e-9)
          << "A=" << a.to_string() << " B=" << b.to_string();
    } else if (bb.verdict == Verdict::kUnsafe) {
      ++refuted;
      EXPECT_GT(gap, 0.0);
      // The refutation point is a genuine violating product prior.
      ProductDistribution witness(bb.refutation_point);
      EXPECT_GT(witness.safety_gap(a, b), 1e-4 - 1e-12);
    }
  }
  // Margins whose zero set is a full surface exhaust the budget and stay
  // kUnknown — the contract is "no wrong definite verdicts", not
  // completeness. (The SOS layer covers those instances analytically.)
  EXPECT_GE(certified, 1);
  EXPECT_GT(refuted, 5);
}

TEST(BranchBound, BudgetExhaustionIsUnknownNotWrong) {
  // A tiny budget must never produce a wrong definite verdict.
  Rng rng(23);
  const unsigned n = 3;
  for (int t = 0; t < 20; ++t) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    BranchBoundOptions tiny;
    tiny.max_boxes = 8;
    const BranchBoundResult bb = branch_bound_product_safety(a, b, tiny);
    if (bb.verdict == Verdict::kUnknown) continue;
    AscentOptions ascent;
    ascent.seed = 333 + t;
    const double gap = maximize_product_gap(a, b, ascent).max_gap;
    if (bb.verdict == Verdict::kSafe) {
      EXPECT_LE(gap, tiny.epsilon + 1e-9);
    } else {
      EXPECT_GT(gap, 0.0);
    }
  }
}

}  // namespace
}  // namespace epi
