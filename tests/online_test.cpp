// Tests for the online (proactive) auditing extension: the denial-leak
// pitfall of the introduction, and the simulatable strategy that avoids it.
#include <gtest/gtest.h>

#include "core/online.h"

namespace epi {
namespace {

// The introduction's scenario on a single record: A = {1} ("HIV-positive").
// Alice repeatedly asks the direct query {1}.
TEST(Online, TruthfulWhenSafeLeaksThroughDenial) {
  const unsigned n = 1;
  const WorldSet a(n, {1});
  // Bob is HIV-positive (world 1). The truthful answer "yes" would reveal A,
  // so the strategy denies — but a strategy-aware agent infers world 1.
  OnlineAuditSession session(a, /*actual=*/1, OnlineStrategy::kTruthfulWhenSafe);
  const OnlineResponse r = session.ask(a);
  EXPECT_TRUE(r.denied);
  EXPECT_TRUE(session.agent_knows_sensitive()) << "the denial leaked A";
}

TEST(Online, TruthfulWhenSafeAnswersWhenNegative) {
  const unsigned n = 1;
  const WorldSet a(n, {1});
  // Bob is negative: the answer "no" discloses the complement of A, which is
  // never protected (the paper's asymmetry) — so the strategy answers...
  OnlineAuditSession session(a, /*actual=*/0, OnlineStrategy::kTruthfulWhenSafe);
  const OnlineResponse r = session.ask(a);
  EXPECT_FALSE(r.denied);
  EXPECT_FALSE(r.answer);
  EXPECT_FALSE(session.agent_knows_sensitive());
  // ...which is exactly why the denial in the positive case is informative.
}

TEST(Online, SimulatableDeniesIndependentlyOfActualWorld) {
  const unsigned n = 1;
  const WorldSet a(n, {1});
  for (World actual : {World{0}, World{1}}) {
    OnlineAuditSession session(a, actual, OnlineStrategy::kSimulatable);
    const OnlineResponse r = session.ask(a);
    // Some possible world (world 1) would force a revealing answer, so the
    // simulatable strategy denies in BOTH worlds.
    EXPECT_TRUE(r.denied) << "actual=" << actual;
    // And the denial teaches the agent nothing.
    EXPECT_TRUE(session.agent_knowledge().is_universe());
    EXPECT_FALSE(session.agent_knows_sensitive());
  }
}

TEST(Online, SimulatableAnswersHarmlessQueries) {
  const unsigned n = 2;
  WorldSet a(n);
  for (World w = 0; w < 4; ++w) {
    if (world_bit(w, 0)) a.insert(w);  // A = "record 0 present"
  }
  WorldSet other(n);
  for (World w = 0; w < 4; ++w) {
    if (world_bit(w, 1)) other.insert(w);  // query about record 1 only
  }
  OnlineAuditSession session(a, /*actual=*/0b11, OnlineStrategy::kSimulatable);
  const OnlineResponse r = session.ask(other);
  EXPECT_FALSE(r.denied);
  EXPECT_TRUE(r.answer);
  EXPECT_FALSE(session.agent_knows_sensitive());
}

TEST(Online, SimulatableNeverRevealsAcrossRandomStreams) {
  // Property: under the simulatable strategy, across random query streams
  // and random actual worlds, the strategy-aware agent never learns A.
  Rng rng(2024);
  const unsigned n = 3;
  for (int scenario = 0; scenario < 60; ++scenario) {
    WorldSet a = WorldSet::random(n, rng, 0.4);
    if (a.is_empty() || a.is_universe()) continue;
    const World actual = static_cast<World>(rng.next_bits(n));
    OnlineAuditSession session(a, actual, OnlineStrategy::kSimulatable);
    for (int q = 0; q < 8; ++q) {
      WorldSet query = WorldSet::random(n, rng, 0.5);
      session.ask(query);
      ASSERT_FALSE(session.agent_knows_sensitive())
          << "A=" << a.to_string() << " actual=" << actual << " q=" << q;
      // The actual world must always remain possible for the agent
      // (knowledge, not belief — Section 2).
      ASSERT_TRUE(session.agent_knowledge().contains(actual));
    }
  }
}

TEST(Online, TruthfulWhenSafeLeaksOnSomeStream) {
  // Contrast property: the leaky strategy does reveal A on some stream.
  Rng rng(2025);
  const unsigned n = 3;
  int leaks = 0;
  for (int scenario = 0; scenario < 60; ++scenario) {
    WorldSet a = WorldSet::random(n, rng, 0.4);
    if (a.is_empty() || a.is_universe()) continue;
    // Pick an actual world inside A so there is something to leak.
    if ((a).is_empty()) continue;
    const World actual = a.min_world();
    OnlineAuditSession session(a, actual, OnlineStrategy::kTruthfulWhenSafe);
    for (int q = 0; q < 8 && !session.agent_knows_sensitive(); ++q) {
      session.ask(WorldSet::random(n, rng, 0.5));
    }
    leaks += session.agent_knows_sensitive();
  }
  EXPECT_GT(leaks, 0);
}

TEST(Online, DenialCountTracked) {
  const unsigned n = 1;
  const WorldSet a(n, {1});
  OnlineAuditSession session(a, 1, OnlineStrategy::kSimulatable);
  session.ask(a);
  session.ask(a);
  EXPECT_EQ(session.denials(), 2);
}

TEST(Online, RejectsMismatchedQuery) {
  OnlineAuditSession session(WorldSet(2, {1}), 0, OnlineStrategy::kSimulatable);
  EXPECT_THROW(session.ask(WorldSet(3)), std::invalid_argument);
  EXPECT_THROW(OnlineAuditSession(WorldSet(1, {1}), 5, OnlineStrategy::kSimulatable),
               std::invalid_argument);
}

TEST(Online, StrategyNames) {
  EXPECT_EQ(to_string(OnlineStrategy::kTruthfulWhenSafe), "truthful-when-safe");
  EXPECT_EQ(to_string(OnlineStrategy::kSimulatable), "simulatable");
}

}  // namespace
}  // namespace epi
