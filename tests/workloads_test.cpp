// Tests for the workload-family registry (src/workloads/): registry
// lookups, per-family determinism, the declared-shape guarantees each
// family must honor (monotone policy sessions, collusion agent coverage,
// counting queries, the symbolic rectangle ceiling), the scenario-script
// round trip, and the collusion-analysis bridge.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "core/auditor.h"
#include "core/scenario.h"
#include "core/workload.h"
#include "db/parser.h"
#include "possibilistic/collusion.h"
#include "possibilistic/subcubes.h"
#include "worlds/finite_set.h"
#include "worlds/world_set.h"
#include "workloads/family.h"

namespace epi {
namespace workloads {
namespace {

TEST(WorkloadRegistry, CatalogsTheFiveFamilies) {
  const std::vector<std::string> names = family_names();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "hospital");
  EXPECT_EQ(names[1], "aggregate");
  EXPECT_EQ(names[2], "policy");
  EXPECT_EQ(names[3], "collusion");
  EXPECT_EQ(names[4], "rectangles");
  for (const std::string& name : names) {
    const WorkloadFamily* family = find_family(name);
    ASSERT_NE(family, nullptr) << name;
    EXPECT_EQ(family->name(), name);
    EXPECT_FALSE(family->description().empty());
  }
  EXPECT_EQ(find_family("no-such-family"), nullptr);
}

TEST(WorkloadRegistry, EveryFamilyGeneratesItsDeclaredShape) {
  for (const WorkloadFamily* family : all_families()) {
    FamilyOptions options;
    options.seed = 7;
    GeneratedWorkload workload;
    ASSERT_TRUE(family->generate(options, &workload).ok()) << family->name();
    const Status valid = validate_workload(*family, workload);
    EXPECT_TRUE(valid.ok()) << family->name() << ": " << valid.message();
    // The log view mirrors the stream one-to-one.
    const AuditLog log = workload.to_log();
    ASSERT_EQ(log.size(), workload.stream.size()) << family->name();
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log.entries()[i].user, workload.stream[i].user);
      EXPECT_EQ(log.entries()[i].answer, workload.stream[i].answer);
    }
  }
}

TEST(WorkloadRegistry, SameSeedIsByteIdenticalAndSeedsMatter) {
  for (const WorkloadFamily* family : all_families()) {
    FamilyOptions options;
    options.seed = 0xFEED;
    GeneratedWorkload first, second;
    ASSERT_TRUE(family->generate(options, &first).ok()) << family->name();
    ASSERT_TRUE(family->generate(options, &second).ok()) << family->name();
    EXPECT_EQ(first.initial_state, second.initial_state) << family->name();
    EXPECT_EQ(first.universe.names(), second.universe.names());
    EXPECT_EQ(first.audit_queries, second.audit_queries);
    ASSERT_EQ(first.stream.size(), second.stream.size()) << family->name();
    for (std::size_t i = 0; i < first.stream.size(); ++i) {
      EXPECT_EQ(first.stream[i].user, second.stream[i].user);
      EXPECT_EQ(first.stream[i].query_text, second.stream[i].query_text);
      EXPECT_EQ(first.stream[i].answer, second.stream[i].answer);
    }
    // A different seed must actually change the instance (the state or the
    // stream text, with overwhelming probability at default sizes).
    FamilyOptions other = options;
    other.seed = 0xFEED + 1;
    GeneratedWorkload third;
    ASSERT_TRUE(family->generate(other, &third).ok()) << family->name();
    bool drifted = third.initial_state != first.initial_state ||
                   third.stream.size() != first.stream.size();
    for (std::size_t i = 0; !drifted && i < first.stream.size(); ++i) {
      drifted = third.stream[i].query_text != first.stream[i].query_text ||
                third.stream[i].user != first.stream[i].user;
    }
    EXPECT_TRUE(drifted) << family->name() << ": seed is ignored";
  }
}

// The hospital family must be the core generator, not a reimplementation:
// identical universe, database state, stream, and audit candidates.
TEST(WorkloadHospital, PromotionMatchesCoreGeneratorByteForByte) {
  const WorkloadFamily* family = find_family("hospital");
  ASSERT_NE(family, nullptr);
  FamilyOptions options;
  options.seed = 99;
  options.records = 5;
  options.requests = 30;
  options.users = 3;
  GeneratedWorkload workload;
  ASSERT_TRUE(family->generate(options, &workload).ok());
  EXPECT_EQ(workload.prior, PriorAssumption::kProduct);

  WorkloadOptions core_options;
  core_options.seed = options.seed;
  core_options.patients = options.records;
  core_options.queries = static_cast<int>(options.requests);
  core_options.users = static_cast<int>(options.users);
  const Workload core = make_hospital_workload(core_options);
  EXPECT_EQ(workload.universe.names(), core.universe.names());
  EXPECT_EQ(workload.initial_state, core.database.state());
  EXPECT_EQ(workload.audit_queries, core.audit_candidates);
  ASSERT_EQ(workload.stream.size(), core.log.size());
  for (std::size_t i = 0; i < workload.stream.size(); ++i) {
    EXPECT_EQ(workload.stream[i].user, core.log.entries()[i].user);
    EXPECT_EQ(workload.stream[i].query_text, core.log.entries()[i].query_text);
    EXPECT_EQ(workload.stream[i].answer, core.log.entries()[i].answer);
  }
}

TEST(WorkloadPolicy, SessionsAreMonotoneAndNeverInconsistent) {
  const WorkloadFamily* family = find_family("policy");
  ASSERT_NE(family, nullptr);
  FamilyOptions options;
  options.records = 8;
  options.requests = 40;
  options.users = 2;
  GeneratedWorkload workload;
  ASSERT_TRUE(family->generate(options, &workload).ok());
  EXPECT_EQ(workload.prior, PriorAssumption::kSubcubeKnowledge);
  EXPECT_LE(workload.universe.size(), kMaxSubcubeEnumerationCoordinates);

  // Per-user accumulated knowledge (Prop. 3.10 intersections) only ever
  // shrinks and always keeps the actual world — the monotone-session shape
  // the incremental tiers rely on.
  std::map<std::string, WorldSet> accumulated;
  for (const StreamRequest& request : workload.stream) {
    const WorldSet satisfying =
        parse_query(request.query_text)->compile(workload.universe);
    const WorldSet disclosed = request.answer ? satisfying : ~satisfying;
    auto [it, fresh] = accumulated.emplace(
        request.user, WorldSet::universe(workload.universe.size()));
    (void)fresh;
    const std::size_t before = it->second.count();
    it->second &= disclosed;
    EXPECT_LE(it->second.count(), before);
    EXPECT_TRUE(it->second.contains(workload.initial_state))
        << request.user << " session went inconsistent at \""
        << request.query_text << "\"";
  }
  EXPECT_EQ(accumulated.size(), 2u);

  // The rule set (the audited properties) audits cleanly end to end under
  // the family's own prior.
  AuditorOptions auditor_options;
  auditor_options.threads = 1;
  const Auditor auditor(workload.universe, workload.prior, auditor_options);
  std::vector<AuditReport> reports;
  ASSERT_TRUE(
      auditor.try_audit_many(workload.to_log(), workload.audit_queries, &reports)
          .ok());
  EXPECT_EQ(reports.size(), workload.audit_queries.size());
}

TEST(WorkloadCollusion, CoversAgentsAndPoolsThroughTheCoalitionUser) {
  const WorkloadFamily* family = find_family("collusion");
  ASSERT_NE(family, nullptr);
  FamilyOptions options;
  options.records = 6;
  options.requests = 12;
  options.users = 3;
  GeneratedWorkload workload;
  ASSERT_TRUE(family->generate(options, &workload).ok());
  EXPECT_EQ(workload.prior, PriorAssumption::kLogSupermodular);

  std::set<std::string> users;
  for (const StreamRequest& request : workload.stream) {
    users.insert(request.user);
  }
  EXPECT_GE(users.size(), 3u);  // >= 2 agents plus the coalition
  ASSERT_TRUE(users.count("coalition"));

  // The coalition user's stream is exactly agents 0 and 1's requests, in
  // order — pooled disclosure by replay (Prop. 3.10 makes it exact).
  std::vector<std::pair<std::string, bool>> pooled, replayed;
  for (const StreamRequest& request : workload.stream) {
    if (request.user == "agent0" || request.user == "agent1") {
      pooled.emplace_back(request.query_text, request.answer);
    } else if (request.user == "coalition") {
      replayed.emplace_back(request.query_text, request.answer);
    }
  }
  EXPECT_EQ(replayed, pooled);

  // Too few agents is a hard error, not a silent clamp.
  FamilyOptions solo = options;
  solo.users = 1;
  GeneratedWorkload ignored;
  EXPECT_EQ(family->generate(solo, &ignored).code(),
            Status::Code::kInvalidArgument);
}

TEST(WorkloadCollusion, BridgesIntoCoalitionAuditing) {
  const WorkloadFamily* family = find_family("collusion");
  ASSERT_NE(family, nullptr);
  FamilyOptions options;
  options.records = 5;
  options.requests = 8;
  options.users = 2;
  GeneratedWorkload workload;
  ASSERT_TRUE(family->generate(options, &workload).ok());

  std::vector<CollusionUser> users;
  ASSERT_TRUE(collusion_users(workload, &users).ok());
  ASSERT_GE(users.size(), 3u);
  for (const CollusionUser& user : users) {
    EXPECT_FALSE(user.disclosures.empty()) << user.name;
  }
  // Audit only the agents (the coalition user would re-count them).
  users.erase(std::remove_if(users.begin(), users.end(),
                             [](const CollusionUser& user) {
                               return user.name == "coalition";
                             }),
              users.end());
  ASSERT_EQ(users.size(), 2u);
  const WorldSet sensitive =
      parse_query(workload.audit_queries.back())->compile(workload.universe);
  const std::vector<CoalitionFinding> findings =
      audit_coalitions(users, to_finite(sensitive), workload.initial_state);
  ASSERT_EQ(findings.size(), 3u);  // 2^2 - 1 coalitions
  // Pooling only sharpens knowledge: if any single agent pins the sensitive
  // set, the pair does too.
  const bool single =
      findings[0].knows_sensitive || findings[1].knows_sensitive;
  ASSERT_EQ(findings.back().members.size(), 2u);
  if (single) EXPECT_TRUE(findings.back().knows_sensitive);
}

TEST(WorkloadRectangles, SweepsToTheSymbolicCeiling) {
  const WorkloadFamily* family = find_family("rectangles");
  ASSERT_NE(family, nullptr);
  EXPECT_EQ(family->shape().max_coordinates, kMaxSymbolicCoordinates);

  FamilyOptions options;
  options.records = 32;  // past the dense wall — symbolic covers only
  options.requests = 8;
  GeneratedWorkload workload;
  ASSERT_TRUE(family->generate(options, &workload).ok());
  EXPECT_EQ(workload.universe.size(), 32u);
  EXPECT_EQ(workload.prior, PriorAssumption::kUnrestricted);
  ASSERT_TRUE(validate_workload(*family, workload).ok());

  AuditorOptions auditor_options;
  auditor_options.threads = 1;
  const Auditor auditor(workload.universe, workload.prior, auditor_options);
  EXPECT_EQ(auditor.resolved_backend(), SetBackend::kSymbolic);
  std::vector<AuditReport> reports;
  ASSERT_TRUE(
      auditor.try_audit_many(workload.to_log(), workload.audit_queries, &reports)
          .ok());
  for (const AuditReport& report : reports) {
    EXPECT_EQ(report.per_disclosure.size(), workload.stream.size());
  }

  // One past the ceiling is a hard error.
  FamilyOptions too_big = options;
  too_big.records = 33;
  GeneratedWorkload ignored;
  EXPECT_EQ(family->generate(too_big, &ignored).code(),
            Status::Code::kInvalidArgument);
}

TEST(WorkloadAggregate, KeepsTheCountingGuaranteeEvenForTinyStreams) {
  const WorkloadFamily* family = find_family("aggregate");
  ASSERT_NE(family, nullptr);
  ASSERT_TRUE(family->shape().counting_queries);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    FamilyOptions options;
    options.seed = seed;
    options.records = 4;
    options.requests = 1;  // worst case: the single request must be a count
    GeneratedWorkload workload;
    ASSERT_TRUE(family->generate(options, &workload).ok()) << "seed " << seed;
    const Status valid = validate_workload(*family, workload);
    EXPECT_TRUE(valid.ok()) << "seed " << seed << ": " << valid.message();
  }
}

TEST(WorkloadScript, ScenarioRoundTripReproducesTheStream) {
  const WorkloadFamily* family = find_family("aggregate");
  ASSERT_NE(family, nullptr);
  FamilyOptions options;
  options.records = 6;
  options.requests = 10;
  GeneratedWorkload workload;
  ASSERT_TRUE(family->generate(options, &workload).ok());

  const std::string script = to_scenario_script(*family, workload);
  const ScenarioResult result = run_scenario(script);
  EXPECT_EQ(result.final_state, workload.initial_state);
  ASSERT_EQ(result.log.size(), workload.stream.size());
  for (std::size_t i = 0; i < workload.stream.size(); ++i) {
    EXPECT_EQ(result.log.entries()[i].user, workload.stream[i].user);
    EXPECT_EQ(result.log.entries()[i].query_text,
              workload.stream[i].query_text);
    EXPECT_EQ(result.log.entries()[i].answer, workload.stream[i].answer)
        << "scenario replay changed the answer of \""
        << workload.stream[i].query_text << "\"";
  }
  EXPECT_EQ(result.reports.size(), workload.audit_queries.size());
}

TEST(WorkloadRegistry, GenerationErrorsLeaveTheOutputUntouched) {
  const WorkloadFamily* family = find_family("policy");
  ASSERT_NE(family, nullptr);
  GeneratedWorkload workload;
  workload.initial_state = 42;
  FamilyOptions options;
  options.records = kMaxSubcubeEnumerationCoordinates + 1;
  EXPECT_FALSE(family->generate(options, &workload).ok());
  EXPECT_EQ(workload.initial_state, 42u);
  EXPECT_EQ(workload.universe.size(), 0u);
}

}  // namespace
}  // namespace workloads
}  // namespace epi
