#include <gtest/gtest.h>

#include <cmath>

#include "probabilistic/distribution.h"
#include "probabilistic/family.h"
#include "probabilistic/modularity.h"
#include "probabilistic/product.h"
#include "probabilistic/safe.h"
#include "probabilistic/witness.h"
#include "worlds/match_vector.h"

namespace epi {
namespace {

TEST(Distribution, ValidatesInput) {
  EXPECT_THROW(Distribution(2, {0.5, 0.5}), std::invalid_argument);  // wrong size
  EXPECT_THROW(Distribution(2, {0.5, 0.5, 0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(Distribution(2, {-0.1, 0.4, 0.4, 0.3}), std::invalid_argument);
  EXPECT_NO_THROW(Distribution(2, {0.1, 0.2, 0.3, 0.4}));
  EXPECT_NO_THROW(Distribution(2, {1, 2, 3, 4}, /*normalize=*/true));
}

TEST(Distribution, UniformAndPointMass) {
  auto u = Distribution::uniform(3);
  EXPECT_DOUBLE_EQ(u.prob(World{5}), 0.125);
  auto p = Distribution::point_mass(3, 2);
  EXPECT_DOUBLE_EQ(p.prob(World{2}), 1.0);
  EXPECT_DOUBLE_EQ(p.prob(World{3}), 0.0);
}

TEST(Distribution, EventProbability) {
  Distribution d(2, {0.1, 0.2, 0.3, 0.4});
  WorldSet a(2, {0, 3});
  EXPECT_NEAR(d.prob(a), 0.5, 1e-12);
  EXPECT_NEAR(d.prob(WorldSet::universe(2)), 1.0, 1e-12);
}

TEST(Distribution, ConditionalAndPosterior) {
  Distribution d(2, {0.1, 0.2, 0.3, 0.4});
  WorldSet b(2, {1, 3});
  WorldSet a(2, {3});
  EXPECT_NEAR(d.conditional(a, b), 0.4 / 0.6, 1e-12);
  Distribution post = d.conditioned_on(b);
  EXPECT_NEAR(post.prob(World{1}), 0.2 / 0.6, 1e-12);
  EXPECT_NEAR(post.prob(World{0}), 0.0, 1e-12);
  EXPECT_THROW(d.conditioned_on(WorldSet(2)), std::domain_error);
}

TEST(Distribution, SupportAndRandom) {
  Rng rng(3);
  auto d = Distribution::random(3, rng);
  EXPECT_EQ(d.support().count(), 8u);
  double sum = 0.0;
  for (double w : d.weights()) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Distribution, SafetyGapSign) {
  // From the paper's Section 1.1 example: B = "r1 in w implies r2 in w"
  // cannot raise the probability of A = "r1 in w" for any prior.
  // Coordinates: bit 0 = r1, bit 1 = r2.
  WorldSet a(2);
  for (World w = 0; w < 4; ++w) {
    if (world_bit(w, 0)) a.insert(w);
  }
  WorldSet b(2);
  for (World w = 0; w < 4; ++w) {
    if (!world_bit(w, 0) || world_bit(w, 1)) b.insert(w);
  }
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    auto p = Distribution::random(2, rng);
    EXPECT_LE(p.safety_gap(a, b), 1e-12) << "trial " << trial;
  }
}

TEST(ProductDistribution, Basics) {
  ProductDistribution p({0.5, 0.25});
  EXPECT_NEAR(p.prob(world_from_string("00")), 0.5 * 0.75, 1e-12);
  EXPECT_NEAR(p.prob(world_from_string("11")), 0.5 * 0.25, 1e-12);
  EXPECT_THROW(ProductDistribution({1.5}), std::invalid_argument);
  EXPECT_THROW(p.set_param(0, -0.1), std::invalid_argument);
}

TEST(ProductDistribution, DenseExpansionAgrees) {
  Rng rng(7);
  auto p = ProductDistribution::random(4, rng);
  auto d = p.to_distribution();
  for (World w = 0; w < 16; ++w) {
    EXPECT_NEAR(p.prob(w), d.prob(w), 1e-12);
  }
  WorldSet s = WorldSet::random(4, rng, 0.5);
  EXPECT_NEAR(p.prob(s), d.prob(s), 1e-12);
}

TEST(ProductDistribution, IndependenceAcrossCoordinates) {
  ProductDistribution p({0.3, 0.7, 0.2});
  WorldSet bit0(3), bit1(3);
  for (World w = 0; w < 8; ++w) {
    if (world_bit(w, 0)) bit0.insert(w);
    if (world_bit(w, 1)) bit1.insert(w);
  }
  EXPECT_NEAR(p.prob(bit0 & bit1), p.prob(bit0) * p.prob(bit1), 1e-12);
  EXPECT_NEAR(p.prob(bit0), 0.3, 1e-12);
}

TEST(Modularity, ProductIsBothSuperAndSubmodular) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    auto d = ProductDistribution::random(4, rng).to_distribution();
    EXPECT_TRUE(is_log_supermodular(d));
    EXPECT_TRUE(is_log_submodular(d));
    EXPECT_TRUE(is_product(d));
  }
}

TEST(Modularity, RandomIsingIsLogSupermodular) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    auto d = random_log_supermodular(4, rng);
    EXPECT_TRUE(is_log_supermodular(d)) << "trial " << trial;
  }
}

TEST(Modularity, RandomIsingIsLogSubmodular) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    auto d = random_log_submodular(4, rng);
    EXPECT_TRUE(is_log_submodular(d)) << "trial " << trial;
  }
}

TEST(Modularity, CoupledIsingIsNotProduct) {
  Rng rng(19);
  int non_product = 0;
  for (int trial = 0; trial < 10; ++trial) {
    auto d = random_log_supermodular(4, rng, 1.0, 2.0);
    if (!is_product(d)) ++non_product;
  }
  EXPECT_GT(non_product, 5);
}

TEST(Modularity, DegenerateUniversesAreTriviallyModular) {
  // n = 1 — the smallest universe Distribution admits — has no incomparable
  // world pairs (0 < 1 is a chain), so Definition 5.1 quantifies over an
  // empty set and every distribution is supermodular, submodular, and a
  // product at once, even a point mass.
  const Distribution biased(1, {0.9, 0.1});
  EXPECT_TRUE(is_log_supermodular(biased));
  EXPECT_TRUE(is_log_submodular(biased));
  EXPECT_TRUE(is_product(biased));
  const Distribution point = Distribution::point_mass(1, 1);
  EXPECT_TRUE(is_log_supermodular(point));
  EXPECT_TRUE(is_log_submodular(point));
  EXPECT_TRUE(is_product(point));
}

TEST(Modularity, ZeroMassWorldsDecideTheInequalityStrictly) {
  // Mass only on the incomparable pair {01, 10}: the meet/join side of
  // Definition 5.1 is 0, so P is strictly submodular and not a product.
  const Distribution anti(2, {0.0, 0.5, 0.5, 0.0});
  EXPECT_FALSE(is_log_supermodular(anti));
  EXPECT_TRUE(is_log_submodular(anti));
  EXPECT_FALSE(is_product(anti));
  // Mass only on the chain {00, 11}: the incomparable side is 0, so P is
  // strictly supermodular and again not a product.
  const Distribution chain(2, {0.5, 0.0, 0.0, 0.5});
  EXPECT_TRUE(is_log_supermodular(chain));
  EXPECT_FALSE(is_log_submodular(chain));
  EXPECT_FALSE(is_product(chain));
}

TEST(Modularity, FourFunctionsConsequence) {
  // Theorem 5.3 with alpha=beta=gamma=delta=P: for log-supermodular P,
  // P[X] P[Y] <= P[X \/ Y] P[X /\ Y] for all sets X, Y.
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    auto d = random_log_supermodular(4, rng);
    WorldSet x = WorldSet::random(4, rng, 0.4);
    WorldSet y = WorldSet::random(4, rng, 0.4);
    if (x.is_empty() || y.is_empty()) continue;
    EXPECT_LE(d.prob(x) * d.prob(y),
              d.prob(x.setwise_join(y)) * d.prob(x.setwise_meet(y)) + 1e-9)
        << "trial " << trial;
  }
}

TEST(ProbKnowledge, ConsistencyEnforced) {
  auto p = Distribution::point_mass(2, 1);
  EXPECT_NO_THROW(ProbKnowledgeWorld(1, p));
  EXPECT_THROW(ProbKnowledgeWorld(0, p), std::invalid_argument);
}

TEST(ProbKnowledge, ProductFiltersZeroMassWorlds) {
  WorldSet c = WorldSet::universe(2);
  std::vector<Distribution> pi = {Distribution::point_mass(2, 1)};
  auto k = ProbSecondLevelKnowledge::product(c, pi);
  EXPECT_EQ(k.size(), 1u);
  EXPECT_EQ(k.pairs()[0].world, 1u);
}

TEST(ProbKnowledge, PreservingUnderConditioning) {
  // K = all (w, P) for P in {uniform, uniform|B}: B is then K-preserving.
  const unsigned n = 2;
  WorldSet b(n, {1, 3});
  auto uniform = Distribution::uniform(n);
  auto conditioned = uniform.conditioned_on(b);
  ProbSecondLevelKnowledge k =
      ProbSecondLevelKnowledge::product(WorldSet::universe(n), {uniform, conditioned});
  EXPECT_TRUE(k.is_preserving(b));
  WorldSet b2(n, {0, 1});
  EXPECT_FALSE(k.is_preserving(b2));
}

TEST(SafeProbabilistic, Definition34) {
  // Prior uniform; A = {11}, B = {01,11} (bit0 view): learning B doubles the
  // probability of A, so A is not private.
  const unsigned n = 2;
  auto uniform = Distribution::uniform(n);
  ProbSecondLevelKnowledge k(n);
  k.add(3, uniform);
  WorldSet a(n, {3});
  WorldSet b(n, {1, 3});
  EXPECT_FALSE(safe_probabilistic(k, a, b));
  auto violation = find_probabilistic_violation(k, a, b);
  ASSERT_TRUE(violation.has_value());
  EXPECT_GT(violation->prior.conditional(a, b), violation->prior.prob(a));

  // The paper's implication query is safe for the same prior.
  WorldSet a2(n);
  for (World w = 0; w < 4; ++w) {
    if (world_bit(w, 0)) a2.insert(w);
  }
  WorldSet b2(n);
  for (World w = 0; w < 4; ++w) {
    if (!world_bit(w, 0) || world_bit(w, 1)) b2.insert(w);
  }
  ProbSecondLevelKnowledge k2(n);
  k2.add(3, uniform);
  EXPECT_TRUE(safe_probabilistic(k2, a2, b2));
}

TEST(SafeProbabilistic, WorldOutsideBDiscarded) {
  const unsigned n = 2;
  ProbSecondLevelKnowledge k(n);
  k.add(0, Distribution::uniform(n));  // world 0 not in B below
  WorldSet a(n, {3});
  WorldSet b(n, {1, 3});
  EXPECT_TRUE(safe_probabilistic(k, a, b));
}

TEST(SafeFamily, Proposition36MatchesDefinition) {
  Rng rng(29);
  for (int trial = 0; trial < 60; ++trial) {
    const unsigned n = 3;
    std::vector<Distribution> pi;
    for (int i = 0; i < 4; ++i) pi.push_back(Distribution::random(n, rng));
    WorldSet c = WorldSet::random(n, rng, 0.8);
    if (c.is_empty()) c.insert(0);
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.6);
    if (b.is_empty()) continue;
    auto k = ProbSecondLevelKnowledge::product(c, pi);
    // Prop 3.6 vs Def 3.4 on the explicit product.
    EXPECT_EQ(safe_family(pi, c, a, b), safe_probabilistic(k, a, b))
        << "trial " << trial;
  }
}

TEST(SafeFamily, LiftedFormIsStronger) {
  // Eq (11) quantifies over all P in Pi regardless of support, so it implies
  // the (C, Pi) form for any C.
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    const unsigned n = 3;
    std::vector<Distribution> pi;
    for (int i = 0; i < 3; ++i) pi.push_back(Distribution::random(n, rng));
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.6);
    WorldSet c = WorldSet::random(n, rng, 0.5);
    if (b.is_empty() || c.is_empty()) continue;
    if (safe_family_lifted(pi, a, b)) {
      EXPECT_TRUE(safe_family(pi, c, a, b)) << "trial " << trial;
    }
  }
}

TEST(UnrestrictedProb, Theorem311AgainstRandomPriors) {
  // When Theorem 3.11 says safe, no random prior may violate; when it says
  // unsafe, the two-point witness must violate.
  Rng rng(37);
  const unsigned n = 3;
  for (int trial = 0; trial < 100; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    if (b.is_empty()) continue;
    if (safe_unrestricted_prob(a, b)) {
      for (int i = 0; i < 20; ++i) {
        auto p = Distribution::random(n, rng);
        EXPECT_LE(p.safety_gap(a, b), 1e-9) << "trial " << trial;
      }
      EXPECT_FALSE(unrestricted_witness(a, b).has_value());
    } else {
      auto witness = unrestricted_witness(a, b);
      ASSERT_TRUE(witness.has_value()) << "trial " << trial;
      EXPECT_GT(witness->safety_gap(a, b), 0.1);
    }
  }
}

TEST(Witness, SupermodularWitnessIsValidWhenItExists) {
  Rng rng(41);
  const unsigned n = 4;
  int found = 0;
  for (int trial = 0; trial < 200 && found < 30; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    auto witness = supermodular_witness(a, b);
    if (!witness) continue;
    ++found;
    EXPECT_TRUE(is_log_supermodular(*witness)) << "trial " << trial;
    EXPECT_GT(witness->safety_gap(a, b), 1e-9) << "trial " << trial;
  }
  EXPECT_GT(found, 10);
}

TEST(Witness, BoxWitnessConcentratesOnBox) {
  auto w = MatchVector::from_string("1*0");
  auto p = box_witness(3, w.stars, w.values);
  EXPECT_DOUBLE_EQ(p.param(0), 1.0);
  EXPECT_DOUBLE_EQ(p.param(1), 0.5);
  EXPECT_DOUBLE_EQ(p.param(2), 0.0);
  // All mass inside Box(w).
  double inside = 0.0;
  for (World v = 0; v < 8; ++v) {
    if (refines(v, w)) inside += p.prob(v);
  }
  EXPECT_NEAR(inside, 1.0, 1e-12);
}

}  // namespace
}  // namespace epi
