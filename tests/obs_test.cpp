// The observability layer in isolation: counters, histograms, registry
// snapshots, span collection with cross-thread parenting, and the JSON /
// text exporters (including the JSON round-trip the CI smoke test relies
// on).
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace epi {
namespace obs {
namespace {

// Span-collection tests are vacuous when the instrumentation is compiled
// out; skip them there instead of asserting on an empty trace.
#ifdef EPI_OBS_NOOP
#define SKIP_WITHOUT_SPANS() GTEST_SKIP() << "tracing compiled out (EPI_OBS_NOOP)"
#else
#define SKIP_WITHOUT_SPANS()
#endif

/// Installs a fresh Trace for the test's scope and uninstalls on exit, so
/// tests never leak an active sink into each other (or into other suites).
class ScopedTrace {
 public:
  ScopedTrace() : trace_(std::make_shared<Trace>()) { install_trace(trace_); }
  ~ScopedTrace() { install_trace(nullptr); }
  Trace& operator*() { return *trace_; }
  Trace* operator->() { return trace_.get(); }

 private:
  std::shared_ptr<Trace> trace_;
};

TEST(Metrics, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.set(7);
  EXPECT_EQ(c.value(), 7);
}

TEST(Metrics, HistogramBuckets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);  // empty -> 0, not INT64_MAX
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(1024);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 1030);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1024);
  EXPECT_EQ(h.bucket(0), 1);   // the 0 sample
  EXPECT_EQ(h.bucket(1), 1);   // 1 has bit width 1
  EXPECT_EQ(h.bucket(3), 1);   // 5 has bit width 3
  EXPECT_EQ(h.bucket(11), 1);  // 1024 has bit width 11
}

TEST(Metrics, RegistryFindOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter("x").value(), 3);
  registry.histogram("h").record(9);
  EXPECT_EQ(registry.histogram("h").count(), 1);
}

TEST(Metrics, SnapshotIsSortedAndQueryable) {
  MetricsRegistry registry;
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(2);
  registry.histogram("m.hist").record(3);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "z.last");
  EXPECT_EQ(snap.counter("a.first"), 2);
  EXPECT_EQ(snap.counter("missing"), 0);
  ASSERT_NE(snap.histogram("m.hist"), nullptr);
  EXPECT_EQ(snap.histogram("m.hist")->count, 1);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(Trace, SpansAreNoOpsWhileTracingIsOff) {
  ASSERT_EQ(active_trace(), nullptr);
  ScopedSpan span("should-not-record");
  EXPECT_FALSE(span.live());
  EXPECT_EQ(span.id(), 0u);
  span.attr("k", "v");  // must be harmless
}

TEST(Trace, CollectsNestedSpans) {
  SKIP_WITHOUT_SPANS();
  ScopedTrace trace;
  {
    ScopedSpan outer("outer");
    ASSERT_TRUE(outer.live());
    outer.attr("key", "value");
    {
      ScopedSpan inner("inner");
      ASSERT_TRUE(inner.live());
      EXPECT_NE(inner.id(), outer.id());
    }
  }
  const std::vector<SpanRecord> spans = trace->spans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by id = construction order: outer first, but inner finished first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, 0u);
  ASSERT_EQ(spans[0].attributes.size(), 1u);
  EXPECT_EQ(spans[0].attributes[0].first, "key");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
}

TEST(Trace, SpanContextForwardsParentAcrossThreads) {
  SKIP_WITHOUT_SPANS();
  ScopedTrace trace;
  std::uint64_t parent_id = 0;
  {
    ScopedSpan parent("scheduler");
    parent_id = parent.id();
    std::thread worker([&] {
      SpanContext context(parent_id);
      ScopedSpan task("task");
      EXPECT_TRUE(task.live());
    });
    worker.join();
    // The context must not leak into this thread.
    EXPECT_EQ(current_span(), parent_id);
  }
  const std::vector<SpanRecord> spans = trace->spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].name, "task");
  EXPECT_EQ(spans[1].parent, parent_id);
}

TEST(Export, TraceJsonRoundTrips) {
  SKIP_WITHOUT_SPANS();
  ScopedTrace trace;
  {
    ScopedSpan outer("outer");
    outer.attr("quote", "say \"hi\"\n\tdone\\");
    ScopedSpan inner("inner");
    inner.attr("n", "42");
  }
  const std::vector<SpanRecord> original = trace->spans();
  const std::string json = trace_to_json(*trace);

  std::vector<SpanRecord> parsed;
  const Status status = spans_from_json(json, &parsed);
  ASSERT_TRUE(status.ok()) << status.to_string();
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].id, original[i].id);
    EXPECT_EQ(parsed[i].parent, original[i].parent);
    EXPECT_EQ(parsed[i].name, original[i].name);
    EXPECT_EQ(parsed[i].start_ns, original[i].start_ns);
    EXPECT_EQ(parsed[i].duration_ns, original[i].duration_ns);
    EXPECT_EQ(parsed[i].attributes, original[i].attributes);
  }
}

TEST(Export, MalformedTraceJsonIsRejected) {
  std::vector<SpanRecord> out;
  EXPECT_FALSE(spans_from_json("", &out).ok());
  EXPECT_FALSE(spans_from_json("{}", &out).ok());
  EXPECT_FALSE(spans_from_json("{\"trace\": {\"spans\": [", &out).ok());
  // span_count contradicting the array length must be caught.
  EXPECT_FALSE(
      spans_from_json("{\"trace\": {\"span_count\": 2, \"spans\": []}}", &out)
          .ok());
  // Trailing garbage after the document must be caught.
  EXPECT_FALSE(
      spans_from_json("{\"trace\": {\"span_count\": 0, \"spans\": []}} x", &out)
          .ok());
}

TEST(Export, TextRenderingIndentsChildren) {
  SKIP_WITHOUT_SPANS();
  ScopedTrace trace;
  {
    ScopedSpan outer("outer");
    ScopedSpan inner("inner");
  }
  const std::string text = trace_to_text(*trace);
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("  inner"), std::string::npos);
}

TEST(Export, MetricsJsonAndText) {
  MetricsRegistry registry;
  registry.counter("c.one").add(5);
  registry.histogram("h.lat").record(128);
  const MetricsSnapshot snap = registry.snapshot();
  const std::string json = metrics_to_json(snap);
  EXPECT_NE(json.find("\"c.one\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"h.lat\""), std::string::npos);
  const std::string text = metrics_to_text(snap);
  EXPECT_NE(text.find("c.one"), std::string::npos);
  EXPECT_NE(text.find("h.lat"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace epi
