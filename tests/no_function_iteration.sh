#!/bin/sh
# Lint gate (registered as CTest `no_function_iteration`): hot paths must not
# iterate sets through the deprecated std::function-based for_each — the
# templated visit()/visit_intersection inline into the kernel word scan, and
# the whole point of the dense_bits refactor is that no per-element
# type-erased call survives in src/, bench/, or examples/. The shim
# definitions in the two wrappers (and their one coverage test in tests/)
# are the only allowed appearances.
# Usage: no_function_iteration.sh <repo-root>
set -u

root="${1:?usage: no_function_iteration.sh <repo-root>}"

bad=$(grep -rn -e '\.for_each(' -e '->for_each(' \
  "$root/src" "$root/bench" "$root/examples" \
  | grep -v 'src/worlds/world_set\.\(h\|cpp\)' \
  | grep -v 'src/worlds/finite_set\.\(h\|cpp\)' \
  || true)

if [ -n "$bad" ]; then
  echo "FAIL: std::function-based for_each iteration in hot paths:" >&2
  echo "$bad" >&2
  echo "use visit()/visit_intersection instead" >&2
  exit 1
fi

echo "no std::function set iteration outside the deprecated shims OK"
