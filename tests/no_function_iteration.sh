#!/bin/sh
# Lint gate (registered as CTest `no_function_iteration`): set iteration must
# go through the templated visit()/visit_intersection (which inline into the
# kernel word scan) — the whole point of the dense_bits refactor is that no
# per-element type-erased call survives in src/, bench/, or examples/. The
# deprecated std::function-based for_each shims have been removed, so there
# are no allowed appearances at all.
# Usage: no_function_iteration.sh <repo-root>
set -u

root="${1:?usage: no_function_iteration.sh <repo-root>}"

bad=$(grep -rn -e '\.for_each(' -e '->for_each(' \
  "$root/src" "$root/bench" "$root/examples" \
  || true)

if [ -n "$bad" ]; then
  echo "FAIL: std::function-based for_each iteration in hot paths:" >&2
  echo "$bad" >&2
  echo "use visit()/visit_intersection instead" >&2
  exit 1
fi

# The legacy decide_*_safety cascade wrappers were removed with the batch
# API redesign; run_criteria (or the DecisionEngine) is the only cascade
# entry point. The trailing '(' keeps the live, differently-suffixed
# decide_product_safety_complete / decide_product_safety_numeric out of the
# match.
bad=$(grep -rn \
  -e 'decide_unrestricted_safety(' \
  -e 'decide_product_safety(' \
  -e 'decide_supermodular_safety(' \
  "$root/src" "$root/bench" "$root/examples" "$root/tests" \
  --include='*.cpp' --include='*.h' \
  || true)

if [ -n "$bad" ]; then
  echo "FAIL: removed decide_*_safety wrapper referenced:" >&2
  echo "$bad" >&2
  echo "use run_criteria(<family>_criteria(), ...) or the DecisionEngine" >&2
  exit 1
fi

echo "no std::function set iteration OK"
