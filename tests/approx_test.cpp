// Tests for the Section 1.1 comparison frameworks and the paper's
// gain-vs-loss observation.
#include <gtest/gtest.h>

#include <cmath>

#include "approx/frameworks.h"
#include "db/parser.h"

namespace epi {
namespace {

RecordUniverse two_records() {
  RecordUniverse u;
  u.add("r1");
  u.add("r2");
  return u;
}

TEST(Logit, BasicValuesAndSaturation) {
  EXPECT_DOUBLE_EQ(logit(0.5), 0.0);
  EXPECT_NEAR(logit(0.75), std::log(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(logit(0.0), -kLogitCap);
  EXPECT_DOUBLE_EQ(logit(1.0), kLogitCap);
  EXPECT_GT(logit(0.9), logit(0.1));
}

TEST(RhoBreach, DetectsJumpAcrossThresholds) {
  const unsigned n = 2;
  auto uniform = Distribution::uniform(n);
  WorldSet a(n, {3});
  WorldSet b(n, {3});
  // P[A] = 1/4 <= 0.5, P[A|B] = 1 >= 0.8: breach.
  EXPECT_TRUE(rho1_rho2_breach(uniform, a, b, 0.5, 0.8));
  // Thresholds not straddled: no breach.
  EXPECT_FALSE(rho1_rho2_breach(uniform, a, b, 0.1, 0.8));
  EXPECT_THROW(rho1_rho2_breach(uniform, a, b, 0.8, 0.5), std::invalid_argument);
}

TEST(LambdaBound, SymmetricVersionRejectsPureLoss) {
  // The paper's implication disclosure can only LOWER P[A]; the symmetric
  // lambda bound rejects a large loss while the gain-only version accepts.
  RecordUniverse u = two_records();
  const WorldSet a = parse_query("r1")->compile(u);
  const WorldSet b = parse_query("r1 -> r2")->compile(u);
  // A prior concentrated near the removed cell makes the loss large:
  // P(10) = 0.9 spread, rest uniform.
  std::vector<double> w = {0.04, 0.88, 0.04, 0.04};  // world 1 = "10"
  Distribution prior(2, w, /*normalize=*/true);
  const double gain = logit_gain(prior, a, b);
  EXPECT_LT(gain, 0.0);  // a pure loss
  EXPECT_FALSE(lambda_safe(prior, a, b, 0.5));
  EXPECT_TRUE(lambda_safe_gain_only(prior, a, b, 0.5));
  EXPECT_FALSE(sulq_safe(prior, a, b, 1.0));
  EXPECT_TRUE(sulq_safe_gain_only(prior, a, b, 1.0));
}

TEST(LambdaBound, GainDetectedByBothVariants) {
  const unsigned n = 2;
  auto uniform = Distribution::uniform(n);
  WorldSet a(n, {3});
  WorldSet b(n, {1, 3});
  // P[A|B]/P[A] = 2: both variants reject at lambda = 0.25 (1/(1-l) = 1.33).
  EXPECT_FALSE(lambda_safe(uniform, a, b, 0.25));
  EXPECT_FALSE(lambda_safe_gain_only(uniform, a, b, 0.25));
  // Permissive lambda accepts.
  EXPECT_TRUE(lambda_safe(uniform, a, b, 0.6));
}

TEST(SulqBound, MatchesHandComputedLogits) {
  const unsigned n = 2;
  auto uniform = Distribution::uniform(n);
  WorldSet a(n, {3});
  WorldSet b(n, {1, 3});
  // P[A] = 1/4 (logit = -log 3), P[A|B] = 1/2 (logit = 0).
  EXPECT_NEAR(logit_gain(uniform, a, b), std::log(3.0), 1e-12);
  EXPECT_TRUE(sulq_safe(uniform, a, b, 1.2));
  EXPECT_FALSE(sulq_safe(uniform, a, b, 1.0));
}

TEST(SulqBound, ZeroMassDisclosureIsNeutral) {
  const unsigned n = 2;
  auto point = Distribution::point_mass(n, 0);
  WorldSet a(n, {3});
  WorldSet b(n, {1, 3});  // P[B] = 0
  EXPECT_DOUBLE_EQ(logit_gain(point, a, b), 0.0);
  EXPECT_TRUE(sulq_safe(point, a, b, 0.1));
  EXPECT_TRUE(lambda_safe(point, a, b, 0.1));
  EXPECT_FALSE(rho1_rho2_breach(point, a, b, 0.5, 0.8));
}

TEST(Assessment, EpistemicallySafeImplicationHasGainZeroButBigLoss) {
  // The flagship asymmetry measurement: for the Section 1.1 implication
  // disclosure the max gain over product priors is ~0, while the max loss is
  // large — so symmetric frameworks reject it and gain-only ones accept.
  RecordUniverse u = two_records();
  const WorldSet a = parse_query("r1")->compile(u);
  const WorldSet b = parse_query("r1 -> r2")->compile(u);
  Rng rng(7);
  const FrameworkAssessment s = assess_over_product_priors(a, b, rng, 3000);
  EXPECT_TRUE(s.epistemic_ok(1e-6));
  EXPECT_LT(s.max_logit_gain, 0.05);
  EXPECT_GT(s.max_logit_loss, 1.0);
  EXPECT_TRUE(s.sulq_gain_only_ok(0.1));
  EXPECT_FALSE(s.sulq_ok(0.1));
  EXPECT_TRUE(s.lambda_gain_only_ok(0.1));
  EXPECT_FALSE(s.lambda_ok(0.1));
  EXPECT_FALSE(s.breach_rho);
}

TEST(Assessment, DirectDisclosureFailsEverything) {
  RecordUniverse u = two_records();
  const WorldSet a = parse_query("r1")->compile(u);
  Rng rng(9);
  const FrameworkAssessment s = assess_over_product_priors(a, a, rng, 3000);
  EXPECT_FALSE(s.epistemic_ok());
  EXPECT_FALSE(s.sulq_gain_only_ok(1.0));
  EXPECT_FALSE(s.lambda_gain_only_ok(0.5));
  EXPECT_TRUE(s.breach_rho);
}

TEST(Assessment, IndependentDisclosurePassesEverything) {
  RecordUniverse u = two_records();
  const WorldSet a = parse_query("r1")->compile(u);
  const WorldSet b = parse_query("r2")->compile(u);
  Rng rng(11);
  const FrameworkAssessment s = assess_over_product_priors(a, b, rng, 2000);
  EXPECT_TRUE(s.epistemic_ok(1e-9));
  EXPECT_TRUE(s.sulq_ok(1e-6));
  EXPECT_TRUE(s.lambda_ok(0.01));
  EXPECT_FALSE(s.breach_rho);
}

}  // namespace
}  // namespace epi
