#!/bin/sh
# Byte-identical report parity (registered as CTest `audit_report_parity`):
# audit_cli's output on the scenario corpus must match the golden reports
# captured before the dense_bits kernel refactor, byte for byte — the
# kernel's fused predicates and visitors must not change visiting order or
# floating-point accumulation anywhere in the audit path. Run twice (1 and 4
# worker threads) to pin thread-count determinism at the same time.
# Usage: audit_report_parity.sh <path-to-audit_cli> <scenario-dir> <golden-dir>
set -u

cli="${1:?usage: audit_report_parity.sh <audit_cli> <scenario-dir> <golden-dir>}"
scenarios="${2:?missing scenario dir}"
golden="${3:?missing golden dir}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

check() {
  name="$1"
  shift
  ref="$golden/$name.report.txt"
  [ -f "$ref" ] || fail "missing golden report $ref"
  for threads in 1 4; do
    "$cli" --threads "$threads" "$@" > "$tmp/$name.$threads.txt" 2>&1 \
      || fail "$name (--threads $threads) exited nonzero"
    if ! cmp -s "$tmp/$name.$threads.txt" "$ref"; then
      diff "$ref" "$tmp/$name.$threads.txt" | head -20 >&2
      fail "$name (--threads $threads) differs from golden report"
    fi
  done
  echo "  $name: byte-identical (threads 1, 4)"
}

check builtin
check hospital "$scenarios/hospital.audit"
check collusion "$scenarios/collusion.audit"

echo "audit report parity OK"
