#include <gtest/gtest.h>

#include "db/database.h"
#include "db/parser.h"
#include "db/query.h"
#include "db/record.h"

namespace epi {
namespace {

RecordUniverse hospital_universe() {
  RecordUniverse u;
  u.add(Record{"bob_hiv", {{"patient", "Bob"}, {"fact", "HIV-positive"}}});
  u.add(Record{"bob_transfusion", {{"patient", "Bob"}, {"fact", "blood transfusion"}}});
  u.add("alice_flu");
  return u;
}

TEST(RecordUniverse, AddAndLookup) {
  RecordUniverse u = hospital_universe();
  EXPECT_EQ(u.size(), 3u);
  EXPECT_EQ(u.coordinate_of("bob_hiv"), 0u);
  EXPECT_EQ(u.coordinate_of("alice_flu"), 2u);
  EXPECT_FALSE(u.coordinate_of("nobody").has_value());
  EXPECT_EQ(u.record(0).attributes.at("patient"), "Bob");
  EXPECT_EQ(u.names(), (std::vector<std::string>{"bob_hiv", "bob_transfusion", "alice_flu"}));
}

TEST(RecordUniverse, RejectsDuplicatesAndEmpty) {
  RecordUniverse u;
  u.add("r");
  EXPECT_THROW(u.add("r"), std::invalid_argument);
  EXPECT_THROW(u.add(""), std::invalid_argument);
}

TEST(Query, EvaluateAndCompile) {
  RecordUniverse u = hospital_universe();
  QueryPtr q = atom("bob_hiv") & !atom("alice_flu");
  EXPECT_TRUE(q->evaluate(u, world_from_string("100")));
  EXPECT_FALSE(q->evaluate(u, world_from_string("101")));
  WorldSet compiled = q->compile(u);
  EXPECT_EQ(compiled, WorldSet::from_strings(3, {"100", "110"}));
}

TEST(Query, ImplicationSemantics) {
  RecordUniverse u = hospital_universe();
  QueryPtr q = implies(atom("bob_hiv"), atom("bob_transfusion"));
  // False only when hiv=1, transfusion=0.
  EXPECT_FALSE(q->evaluate(u, world_from_string("100")));
  EXPECT_TRUE(q->evaluate(u, world_from_string("110")));
  EXPECT_TRUE(q->evaluate(u, world_from_string("000")));
  EXPECT_EQ(q->compile(u).count(), 6u);
}

TEST(Query, UnknownRecordThrows) {
  RecordUniverse u = hospital_universe();
  QueryPtr q = atom("ghost");
  EXPECT_THROW(q->evaluate(u, 0), std::invalid_argument);
}

TEST(Query, ToStringRoundTripThroughParser) {
  QueryPtr q = implies(atom("a") & !atom("b"), atom("c") | constant(false));
  QueryPtr reparsed = parse_query(q->to_string());
  RecordUniverse u;
  u.add("a");
  u.add("b");
  u.add("c");
  EXPECT_EQ(q->compile(u), reparsed->compile(u));
}

TEST(Parser, PrecedenceAndAssociativity) {
  RecordUniverse u;
  u.add("a");
  u.add("b");
  u.add("c");
  // & binds tighter than |, -> is lowest.
  QueryPtr q1 = parse_query("a | b & c");
  QueryPtr q2 = parse_query("a | (b & c)");
  EXPECT_EQ(q1->compile(u), q2->compile(u));
  QueryPtr q3 = parse_query("a -> b -> c");  // right assoc: a -> (b -> c)
  QueryPtr q4 = parse_query("a -> (b -> c)");
  EXPECT_EQ(q3->compile(u), q4->compile(u));
  QueryPtr q5 = parse_query("!a & b");
  QueryPtr q6 = parse_query("(!a) & b");
  EXPECT_EQ(q5->compile(u), q6->compile(u));
}

TEST(Parser, Constants) {
  RecordUniverse u;
  u.add("a");
  EXPECT_TRUE(parse_query("true")->compile(u).is_universe());
  EXPECT_TRUE(parse_query("false")->compile(u).is_empty());
  EXPECT_EQ(parse_query("a | !a")->compile(u).count(), 2u);
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_query(""), ParseError);
  EXPECT_THROW(parse_query("a &"), ParseError);
  EXPECT_THROW(parse_query("(a"), ParseError);
  EXPECT_THROW(parse_query("a b"), ParseError);
  EXPECT_THROW(parse_query("a + b"), ParseError);
  EXPECT_THROW(parse_query("->a"), ParseError);
}

TEST(Database, InsertRemoveAnswer) {
  InMemoryDatabase db(hospital_universe());
  EXPECT_FALSE(db.answer("bob_hiv"));
  db.insert("bob_hiv");
  db.insert("bob_transfusion");
  EXPECT_TRUE(db.contains("bob_hiv"));
  EXPECT_TRUE(db.answer("bob_hiv & bob_transfusion"));
  EXPECT_TRUE(db.answer("bob_hiv -> bob_transfusion"));
  db.remove("bob_transfusion");
  EXPECT_FALSE(db.answer("bob_hiv -> bob_transfusion"));
  EXPECT_THROW(db.insert("ghost"), std::invalid_argument);
  EXPECT_EQ(db.to_string(), "bob_hiv=1, bob_transfusion=0, alice_flu=0");
}

TEST(Database, StateRoundTrip) {
  InMemoryDatabase db(hospital_universe());
  db.set_state(world_from_string("101"));
  EXPECT_TRUE(db.contains("bob_hiv"));
  EXPECT_FALSE(db.contains("bob_transfusion"));
  EXPECT_TRUE(db.contains("alice_flu"));
  EXPECT_EQ(db.state(), world_from_string("101"));
}

}  // namespace
}  // namespace epi
