// Collusion analysis tests: the Section 4.1 motivation for intersection-
// closed knowledge, exercised end to end.
#include <gtest/gtest.h>

#include <memory>

#include "possibilistic/collusion.h"
#include "possibilistic/intervals.h"
#include "possibilistic/safe.h"
#include "possibilistic/sigma_family.h"

namespace epi {
namespace {

TEST(Collusion, PosteriorIntersectsDisclosures) {
  CollusionUser user;
  user.name = "alice";
  user.prior_family = {FiniteSet::universe(4), FiniteSet(4, {0, 1})};
  user.disclosures = {FiniteSet(4, {0, 2})};
  // actual world 0: universe ∩ {0,2} = {0,2}; {0,1} ∩ {0,2} = {0}.
  auto posts = posterior_family(user, 0);
  ASSERT_EQ(posts.size(), 2u);
  EXPECT_TRUE(std::find(posts.begin(), posts.end(), FiniteSet(4, {0, 2})) != posts.end());
  EXPECT_TRUE(std::find(posts.begin(), posts.end(), FiniteSet(4, {0})) != posts.end());
  // actual world 2: the prior {0,1} becomes inconsistent and is dropped.
  auto posts2 = posterior_family(user, 2);
  ASSERT_EQ(posts2.size(), 1u);
  EXPECT_EQ(posts2[0], FiniteSet(4, {0, 2}));
}

TEST(Collusion, TwoSafeUsersBreachTogether) {
  // Classic collusion: each user alone cannot identify the sensitive world,
  // together they can. Omega = {0,1,2,3}, A = {0}, actual = 0.
  const FiniteSet a(4, {0});
  CollusionUser u1{"u1", {FiniteSet::universe(4)}, {FiniteSet(4, {0, 1})}};
  CollusionUser u2{"u2", {FiniteSet::universe(4)}, {FiniteSet(4, {0, 2})}};

  auto findings = audit_coalitions({u1, u2}, a, 0);
  ASSERT_EQ(findings.size(), 3u);  // {u1}, {u2}, {u1,u2}
  for (const auto& f : findings) {
    if (f.members.size() == 1) {
      EXPECT_FALSE(f.knows_sensitive) << f.members[0];
    } else {
      EXPECT_TRUE(f.knows_sensitive);
    }
  }
}

TEST(Collusion, CoalitionFamilyIsAllPairwiseIntersections) {
  CollusionUser u1{"u1", {FiniteSet(4, {0, 1, 2}), FiniteSet(4, {0, 3})}, {}};
  CollusionUser u2{"u2", {FiniteSet(4, {0, 1}), FiniteSet(4, {0, 2, 3})}, {}};
  auto joint = coalition_family({u1, u2}, 0);
  // {012}∩{01}={01}, {012}∩{023}={02}, {03}∩{01}={0}, {03}∩{023}={03}.
  EXPECT_EQ(joint.size(), 4u);
  EXPECT_TRUE(std::find(joint.begin(), joint.end(), FiniteSet(4, {0})) != joint.end());
}

TEST(Collusion, MatchesIntersectionClosedAuditing) {
  // The interval machinery on the ∩-closure of a family gives the same
  // breach verdicts as explicit coalition analysis when every user shares
  // the family: a disclosure B safe against the ∩-closed K is safe against
  // every coalition of users with priors from the family.
  Rng rng(55);
  const std::size_t m = 6;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<FiniteSet> seed;
    for (int i = 0; i < 3; ++i) {
      FiniteSet s = FiniteSet::random(m, rng, 0.6);
      s.insert(0);  // keep the actual world possible
      seed.push_back(s);
    }
    seed.push_back(FiniteSet::universe(m));
    ExplicitSigma closed = ExplicitSigma(seed).intersection_closure();
    FiniteSet a = FiniteSet::random(m, rng, 0.4);
    FiniteSet b = FiniteSet::random(m, rng, 0.6);
    b.insert(0);
    auto k = SecondLevelKnowledge::product(FiniteSet::universe(m),
                                           closed.enumerate());
    const bool safe = safe_possibilistic(k, a, b);

    // Coalition of two users with priors from the seed family, both told B.
    CollusionUser u1{"u1", seed, {b}};
    CollusionUser u2{"u2", seed, {b}};
    bool coalition_breach = false;
    for (const FiniteSet& joint : coalition_family({u1, u2}, 0)) {
      // Breach means: gained knowledge of A (did not know it from priors).
      if (joint.subset_of(a)) {
        // Check some pair of priors consistent with this joint knowledge did
        // not already know A — conservative: if the joint prior (without B)
        // is not inside A, learning B caused the gain.
        coalition_breach = true;
      }
    }
    if (safe) {
      // Safe against the ∩-closed K means no coalition whose joint PRIOR did
      // not know A can learn it. Verify the weaker direction: if a coalition
      // learned A via B, its joint prior must already have known A.
      if (coalition_breach) {
        bool prior_knew = true;
        for (const FiniteSet& s1 : seed) {
          for (const FiniteSet& s2 : seed) {
            const FiniteSet joint_prior = s1 & s2;
            if (!joint_prior.contains(0)) continue;
            const FiniteSet joint_post = joint_prior & b;
            if (joint_post.subset_of(a) && !joint_prior.subset_of(a)) {
              prior_knew = false;
            }
          }
        }
        EXPECT_TRUE(prior_knew) << "trial " << trial;
      }
    }
  }
}

TEST(Collusion, SingletonUniverseAndEmptySensitiveSet) {
  // Singleton Omega: the only consistent knowledge is {0}, which reveals
  // A = Omega but can never be inside an empty sensitive set (the audit
  // skips empty joints, so A = {} is never flagged).
  CollusionUser solo{"solo", {FiniteSet::universe(1)}, {FiniteSet::universe(1)}};
  std::vector<CoalitionFinding> findings =
      audit_coalitions({solo}, FiniteSet::universe(1), 0);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].knows_sensitive);
  findings = audit_coalitions({solo}, FiniteSet(1), 0);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].knows_sensitive);
}

TEST(Collusion, UniverseDisclosureIsVacuous) {
  // B = Omega rules nothing out: the posterior family is the prior family
  // (all priors here contain the actual world, so none is filtered).
  CollusionUser u{"u",
                  {FiniteSet(4, {0, 1}), FiniteSet(4, {0, 2, 3})},
                  {FiniteSet::universe(4)}};
  EXPECT_EQ(posterior_family(u, 0), u.prior_family);
}

TEST(Collusion, SensitiveUniverseBreachedByAnyConsistentKnowledge) {
  // A = Omega: every nonempty joint knowledge is a subset of A, so the
  // coalition trivially "knows" the sensitive set.
  CollusionUser u{"u", {FiniteSet(3, {0, 1})}, {}};
  const std::vector<CoalitionFinding> findings =
      audit_coalitions({u}, FiniteSet::universe(3), 0);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].knows_sensitive);
}

TEST(Collusion, InconsistentPriorsYieldEmptyPosterior) {
  // Every prior excludes the actual world: all histories are inconsistent
  // (Remark 2.3), so the posterior and coalition families are empty and
  // nothing is breached — not even A = Omega.
  CollusionUser u{"u", {FiniteSet(3, {1, 2})}, {}};
  EXPECT_TRUE(posterior_family(u, 0).empty());
  EXPECT_TRUE(coalition_family({u}, 0).empty());
  const std::vector<CoalitionFinding> findings =
      audit_coalitions({u}, FiniteSet::universe(3), 0);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].knows_sensitive);
}

TEST(Collusion, ValidatesInput) {
  EXPECT_THROW(coalition_family({}, 0), std::invalid_argument);
  std::vector<CollusionUser> too_many(17);
  for (std::size_t i = 0; i < too_many.size(); ++i) {
    too_many[i] = {"u" + std::to_string(i), {FiniteSet::universe(2)}, {}};
  }
  EXPECT_THROW(audit_coalitions(too_many, FiniteSet(2, {0}), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace epi
