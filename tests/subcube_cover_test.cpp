// The symbolic world-set backend: cube-level primitives checked exhaustively
// against brute-force box membership, cover algebra differentially against
// the dense kernel, the canonical Shannon extraction (round trips at every
// corner the conversion has), closed-form product weights, the n = 32
// regime the dense backend cannot reach, and the enumeration guards that
// keep 3^n machinery (SubcubeSigma, TernaryTable) away from symbolic-scale n.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "possibilistic/subcubes.h"
#include "util/rng.h"
#include "worlds/match_vector.h"
#include "worlds/subcube_cover.h"
#include "worlds/world_set.h"

namespace epi {
namespace {

// --- brute-force helpers over small n --------------------------------------

/// Membership mask of Box(c) inside {0,1}^n (n small): bit w set iff
/// w refines c.
std::uint64_t box_mask(const MatchVector& c, unsigned n) {
  std::uint64_t mask = 0;
  for (World w = 0; w < (World{1} << n); ++w) {
    if (refines(w, c)) mask |= std::uint64_t{1} << w;
  }
  return mask;
}

/// All 3^n match vectors over n coordinates.
std::vector<MatchVector> all_cubes(unsigned n) {
  std::size_t total = 1;
  for (unsigned i = 0; i < n; ++i) total *= 3;
  std::vector<MatchVector> out;
  out.reserve(total);
  for (std::size_t code = 0; code < total; ++code) {
    MatchVector c;
    std::size_t rest = code;
    for (unsigned i = 0; i < n; ++i) {
      const unsigned digit = rest % 3;
      rest /= 3;
      if (digit == 2) {
        c.stars |= World{1} << i;
      } else if (digit == 1) {
        c.values |= World{1} << i;
      }
    }
    out.push_back(c);
  }
  return out;
}

std::uint64_t cover_mask(const SubcubeCover& s) {
  std::uint64_t mask = 0;
  for (World w = 0; w < (World{1} << s.n()); ++w) {
    if (s.contains(w)) mask |= std::uint64_t{1} << w;
  }
  return mask;
}

WorldSet random_symbolic(unsigned n, Rng& rng, double density = 0.5) {
  return WorldSet::random(n, rng, density).symbolized();
}

// --- cube-level primitives ---------------------------------------------------

TEST(CubePrimitives, CoordinateMask) {
  EXPECT_EQ(coordinate_mask(1), 0x1u);
  EXPECT_EQ(coordinate_mask(5), 0x1Fu);
  EXPECT_EQ(coordinate_mask(31), 0x7FFFFFFFu);
  EXPECT_EQ(coordinate_mask(32), 0xFFFFFFFFu);  // no UB shift at the ceiling
}

TEST(CubePrimitives, IntersectMeetSubsetExhaustive) {
  // Every pair of cubes over n = 3 (27 x 27), against brute-force masks.
  const unsigned n = 3;
  const std::vector<MatchVector> cubes = all_cubes(n);
  for (const MatchVector& c : cubes) {
    const std::uint64_t mc = box_mask(c, n);
    for (const MatchVector& d : cubes) {
      const std::uint64_t md = box_mask(d, n);
      EXPECT_EQ(cubes_intersect(c, d), (mc & md) != 0);
      EXPECT_EQ(cube_subset(c, d), (mc & ~md) == 0);
      if (cubes_intersect(c, d)) {
        EXPECT_EQ(box_mask(cube_meet(c, d), n), mc & md);
      }
    }
  }
}

TEST(CubePrimitives, SubtractIsDisjointAndExact) {
  // Box(c) \ Box(d) over every pair at n = 3: the orthogonal-sharp pieces
  // are pairwise disjoint, live inside Box(c), and union to the difference.
  const unsigned n = 3;
  const std::vector<MatchVector> cubes = all_cubes(n);
  for (const MatchVector& c : cubes) {
    const std::uint64_t mc = box_mask(c, n);
    for (const MatchVector& d : cubes) {
      const std::uint64_t md = box_mask(d, n);
      std::vector<MatchVector> pieces;
      cube_subtract(c, d, pieces);
      std::uint64_t got = 0;
      for (const MatchVector& p : pieces) {
        const std::uint64_t mp = box_mask(p, n);
        EXPECT_EQ(got & mp, 0u) << "pieces overlap";
        EXPECT_EQ(mp & ~mc, 0u) << "piece escapes Box(c)";
        got |= mp;
      }
      EXPECT_EQ(got, mc & ~md);
    }
  }
}

// --- cover construction and canonical form ----------------------------------

TEST(SubcubeCover, ConstructorsAndPointQueries) {
  const SubcubeCover e = SubcubeCover::empty(4);
  EXPECT_TRUE(e.is_empty());
  EXPECT_EQ(e.count(), 0u);
  EXPECT_EQ(e.cube_count(), 0u);

  const SubcubeCover u = SubcubeCover::universe(4);
  EXPECT_TRUE(u.is_universe());
  EXPECT_EQ(u.count(), 16u);
  EXPECT_EQ(u.cube_count(), 1u);  // one all-star cube

  const SubcubeCover s = SubcubeCover::singleton(4, 0b1010);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.contains(0b1010));
  EXPECT_FALSE(s.contains(0b1011));
  EXPECT_EQ(s.min_world(), World{0b1010});

  const SubcubeCover c =
      SubcubeCover::cube(4, MatchVector::from_string("01**"));
  EXPECT_EQ(c.count(), 4u);  // two starred coordinates
  for (World w = 0; w < 16; ++w) {
    EXPECT_EQ(c.contains(w), refines(w, MatchVector::from_string("01**")));
  }
  EXPECT_EQ(c.to_string(), "cover{01**}");

  EXPECT_THROW(SubcubeCover::empty(4).min_world(), std::logic_error);
}

TEST(SubcubeCover, BoundsAreEnforced) {
  EXPECT_THROW(SubcubeCover{0}, std::invalid_argument);
  EXPECT_THROW(SubcubeCover{kMaxSymbolicCoordinates + 1},
               std::invalid_argument);
  EXPECT_NO_THROW(SubcubeCover{kMaxSymbolicCoordinates});
  // Star/value bits above coordinate n are rejected, not silently masked.
  EXPECT_THROW(SubcubeCover::cube(3, MatchVector{/*stars=*/0b1000, 0}),
               std::invalid_argument);
  EXPECT_THROW(SubcubeCover::cube(3, MatchVector{0, /*values=*/0b1000}),
               std::invalid_argument);
  EXPECT_THROW(SubcubeCover::singleton(3, 8), std::out_of_range);
  // Mismatched n on a binary operation.
  EXPECT_THROW(SubcubeCover::empty(3).unite(SubcubeCover::empty(4)),
               std::invalid_argument);
}

TEST(SubcubeCover, CanonicalizationDeduplicatesAndAbsorbs) {
  // Duplicates collapse; a cube contained in another is absorbed.
  const MatchVector big = MatchVector::from_string("0***");
  const MatchVector small = MatchVector::from_string("001*");
  const SubcubeCover cover = SubcubeCover::from_cubes(4, {small, big, big});
  EXPECT_EQ(cover.cube_count(), 1u);
  EXPECT_EQ(cover.cubes()[0], big);
  EXPECT_EQ(cover.count(), 8u);
}

TEST(SubcubeCover, SemanticEqualityAndHashAcrossSyntacticForms) {
  // {0**, 1**} and {***} denote the same set; so do two different splits of
  // the even worlds. equals() and semantic_hash() must agree on both pairs.
  const SubcubeCover whole = SubcubeCover::universe(3);
  const SubcubeCover split = SubcubeCover::from_cubes(
      3, {MatchVector::from_string("0**"), MatchVector::from_string("1**")});
  EXPECT_TRUE(whole.equals(split));
  EXPECT_EQ(whole.semantic_hash(), split.semantic_hash());

  const SubcubeCover evens =
      SubcubeCover::cube(3, MatchVector::from_string("0**"));
  const SubcubeCover evens_split = SubcubeCover::from_cubes(
      3, {MatchVector::from_string("00*"), MatchVector::from_string("01*")});
  EXPECT_TRUE(evens.equals(evens_split));
  EXPECT_EQ(evens.semantic_hash(), evens_split.semantic_hash());
  EXPECT_FALSE(evens.equals(whole));
}

TEST(SubcubeCover, DisjointCubesPartitionTheCover) {
  Rng rng(0x5CC);
  for (int t = 0; t < 20; ++t) {
    // box_mask/cover_mask pack membership into one 64-bit word: n <= 6 only.
    const unsigned n = 2 + static_cast<unsigned>(t % 5);
    const SubcubeCover s =
        random_symbolic(n, rng, 0.4).cover();
    const std::vector<MatchVector> pieces = s.disjoint_cubes();
    std::uint64_t mask = 0, total = 0;
    for (const MatchVector& p : pieces) {
      const std::uint64_t mp = box_mask(p, n);
      EXPECT_EQ(mask & mp, 0u);
      mask |= mp;
      total += std::uint64_t{1} << p.star_count();
    }
    EXPECT_EQ(mask, cover_mask(s));
    EXPECT_EQ(total, s.count());
  }
}

// --- differential algebra against the dense kernel ---------------------------

class CoverAlgebra : public ::testing::TestWithParam<unsigned> {
 protected:
  unsigned n() const { return GetParam(); }
};

TEST_P(CoverAlgebra, MatchesDenseKernel) {
  Rng rng(0xC0FE + n());
  for (int t = 0; t < 15; ++t) {
    const WorldSet a = WorldSet::random(n(), rng, 0.5);
    const WorldSet b = WorldSet::random(n(), rng, 0.5);
    const SubcubeCover sa = a.symbolized().cover();
    const SubcubeCover sb = b.symbolized().cover();

    EXPECT_EQ(cover_mask(sa.intersect(sb)), cover_mask(sa) & cover_mask(sb));
    EXPECT_EQ(cover_mask(sa.unite(sb)), cover_mask(sa) | cover_mask(sb));
    EXPECT_EQ(cover_mask(sa.subtract(sb)), cover_mask(sa) & ~cover_mask(sb));
    EXPECT_EQ(cover_mask(sa.exclusive_or(sb)),
              cover_mask(sa) ^ cover_mask(sb));
    EXPECT_EQ(sa.complement().count(), a.omega_size() - a.count());

    EXPECT_EQ(sa.count(), a.count());
    EXPECT_EQ(sa.subset_of(sb), a.subset_of(b));
    EXPECT_EQ(sa.disjoint_with(sb), a.disjoint_with(b));
    EXPECT_EQ(sa.equals(sb), a == b);
    if (!a.is_empty()) {
      EXPECT_EQ(sa.min_world(), a.min_world());
    }

    const World mask = static_cast<World>(rng.next_bits(n()));
    EXPECT_EQ(WorldSet::from_cover(sa.xor_with(mask)), a.xor_with(mask));
  }
}

TEST_P(CoverAlgebra, InsertEraseMatchDense) {
  Rng rng(0xADD + n());
  WorldSet dense = WorldSet::random(n(), rng, 0.3);
  SubcubeCover cover = dense.symbolized().cover();
  for (int t = 0; t < 30; ++t) {
    const World w = static_cast<World>(rng.next_bits(n()));
    if (t % 2 == 0) {
      dense.insert(w);
      cover.insert(w);
    } else {
      dense.erase(w);
      cover.erase(w);
    }
    EXPECT_EQ(WorldSet::from_cover(cover), dense);
  }
}

TEST_P(CoverAlgebra, ProductWeightMatchesDenseSum) {
  Rng rng(0xBEEF + n());
  for (int t = 0; t < 10; ++t) {
    std::vector<double> probs(n());
    for (double& p : probs) p = rng.next_double();
    const WorldSet dense = WorldSet::random(n(), rng, 0.5);
    const SubcubeCover cover = dense.symbolized().cover();

    // Per-world reference sum.
    double expected = 0.0;
    dense.visit([&](World w) {
      double mass = 1.0;
      for (unsigned i = 0; i < n(); ++i) {
        mass *= (w >> i) & 1u ? probs[i] : 1.0 - probs[i];
      }
      expected += mass;
    });
    EXPECT_NEAR(cover.product_weight(probs.data()), expected, 1e-12);
    // And through the WorldSet-level fused entry point, both backends.
    EXPECT_NEAR(product_weight_sum(dense, probs.data()), expected, 1e-12);
    EXPECT_NEAR(product_weight_sum(dense.symbolized(), probs.data()),
                expected, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllN, CoverAlgebra,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// --- dense <-> symbolic round trips at the corners ---------------------------

TEST(CoverConversion, RoundTripAtEveryCorner) {
  const unsigned n = 5;
  std::vector<WorldSet> corners;
  corners.push_back(WorldSet::empty(n));                     // empty
  corners.push_back(WorldSet::universe(n));                  // universe
  corners.push_back(WorldSet::singleton(n, 13));             // singleton
  corners.push_back(~WorldSet::singleton(n, 13));            // co-singleton
  corners.push_back(                                         // single cube
      WorldSet::from_cover(SubcubeCover::cube(n, MatchVector::from_string(
                                                     "1*0**")))
          .densified());
  corners.push_back(                                         // overlapping cubes
      WorldSet::from_cover(SubcubeCover::from_cubes(
                               n, {MatchVector::from_string("1****"),
                                   MatchVector::from_string("**11*")}))
          .densified());

  for (const WorldSet& dense : corners) {
    const WorldSet symbolic = dense.symbolized();
    EXPECT_TRUE(symbolic.symbolic());
    EXPECT_EQ(symbolic.count(), dense.count());
    EXPECT_EQ(symbolic.is_empty(), dense.is_empty());
    EXPECT_EQ(symbolic.is_universe(), dense.is_universe());
    EXPECT_EQ(symbolic.densified(), dense);  // lossless round trip
    EXPECT_EQ(symbolic, dense);              // cross-backend semantic equality
  }

  // The canonical corner covers themselves.
  EXPECT_EQ(WorldSet::empty(n).symbolized().cover().cube_count(), 0u);
  EXPECT_EQ(WorldSet::universe(n).symbolized().cover().cube_count(), 1u);
  EXPECT_EQ(WorldSet::singleton(n, 13).symbolized().cover().cube_count(), 1u);
}

TEST(CoverConversion, ShannonExtractionIsCanonical) {
  // from_dense is a function of the set alone: the same worlds inserted in
  // different orders (or reached through different set algebra) extract to
  // syntactically identical covers.
  Rng rng(0x5A11);
  for (int t = 0; t < 20; ++t) {
    const unsigned n = 2 + static_cast<unsigned>(t % 7);
    const WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet reordered(n);
    std::vector<World> worlds = a.to_vector();
    for (std::size_t i = worlds.size(); i > 0; --i) {
      reordered.insert(worlds[i - 1]);
    }
    EXPECT_EQ(a.symbolized().cover().cubes(),
              reordered.symbolized().cover().cubes());
  }
}

// --- past the dense wall: n up to 32 ----------------------------------------

TEST(SymbolicAtScale, BasicAlgebraAtN32) {
  const unsigned n = kMaxSymbolicCoordinates;
  const WorldSet universe = WorldSet::universe(n);  // auto resolves symbolic
  EXPECT_TRUE(universe.symbolic());
  EXPECT_EQ(universe.count(), std::size_t{1} << 32);

  WorldSet a = WorldSet::empty(n);
  a.insert(0);
  a.insert(0xFFFFFFFFu);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ((~a).count(), (std::size_t{1} << 32) - 2);
  EXPECT_EQ(a.min_world(), 0u);

  // Theorem 3.11 at full width: {0, all-ones} vs its complement is disjoint
  // and jointly exhaustive — safe under the unrestricted prior.
  EXPECT_TRUE(a.disjoint_with(~a));
  EXPECT_TRUE(union_is_universe(a, ~a));
  EXPECT_TRUE(intersection3_empty(a, ~a, universe));

  // A wide cube keeps O(#cubes) space: half of 2^32 worlds, one cube.
  const WorldSet half = WorldSet::from_cover(
      SubcubeCover::cube(n, MatchVector{coordinate_mask(31), 0x80000000u}));
  EXPECT_EQ(half.count(), std::size_t{1} << 31);
  EXPECT_EQ((half & a).count(), 1u);  // only the all-ones world
  EXPECT_EQ((half | ~half), universe);
}

TEST(SymbolicAtScale, DenseOnlyOperationsThrowPastTheWall) {
  const WorldSet wide = WorldSet::universe(27);
  EXPECT_TRUE(wide.symbolic());
  EXPECT_THROW(wide.densified(), std::invalid_argument);
  EXPECT_THROW(wide.visit([](World) {}), std::logic_error);
  EXPECT_THROW(wide.to_vector(), std::logic_error);
  EXPECT_THROW(WorldSet::universe(5).cover(), std::logic_error);
}

// --- enumeration guards (the 3^n machinery stops well below n = 32) ----------

TEST(EnumerationGuards, SubcubeSigmaBound) {
  EXPECT_THROW(SubcubeSigma(0), std::invalid_argument);
  EXPECT_THROW(SubcubeSigma(kMaxSubcubeEnumerationCoordinates + 1),
               std::invalid_argument);
  EXPECT_NO_THROW(SubcubeSigma(1));
  EXPECT_NO_THROW(SubcubeSigma(6));
}

TEST(EnumerationGuards, TernaryTableBound) {
  EXPECT_THROW(TernaryTable(0), std::invalid_argument);
  EXPECT_THROW(TernaryTable(15), std::invalid_argument);
  EXPECT_NO_THROW(TernaryTable(1));
  EXPECT_EQ(TernaryTable(6).size(), std::size_t{729});
}

}  // namespace
}  // namespace epi
