// Tests for the DecisionEngine subsystem: stage-cascade parity with the
// pre-engine decision paths, batch-audit determinism across thread counts,
// per-audit caching, custom stage registration and the thread pool itself.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/report.h"
#include "core/workload.h"
#include "criteria/pipeline.h"
#include "db/parser.h"
#include "engine/decision_engine.h"
#include "engine/stages.h"
#include "engine/thread_pool.h"
#include "optimize/emptiness.h"
#include "possibilistic/subcubes.h"
#include "util/rng.h"
#include "worlds/finite_set.h"

namespace epi {
namespace {

std::string describe_product_witness(const ProductDistribution& p) {
  std::ostringstream os;
  os << "product prior with p = (";
  for (unsigned i = 0; i < p.n(); ++i) {
    os << (i ? ", " : "") << p.param(i);
  }
  os << ")";
  return os.str();
}

/// The Auditor::audit_sets switch exactly as it stood before the
/// DecisionEngine refactor — the reference the engine must reproduce
/// verdict-for-verdict, method-for-method.
AuditFinding legacy_audit_sets(PriorAssumption prior, const WorldSet& a,
                               const WorldSet& b, const AuditorOptions& options,
                               const IntervalOracle& oracle) {
  AuditFinding f;
  switch (prior) {
    case PriorAssumption::kUnrestricted: {
      const PipelineResult r =
          run_criteria(unrestricted_criteria(), a, b, "unreachable");
      f.verdict = r.verdict;
      f.method = r.criterion;
      f.certified = true;
      if (r.witness_distribution) {
        f.detail =
            "two-point prior on " + r.witness_distribution->support().to_string();
      }
      break;
    }
    case PriorAssumption::kProduct: {
      const bool sos = options.enable_sos && a.n() <= options.max_sos_records;
      const FullDecision d =
          decide_product_safety_complete(a, b, options.ascent, sos);
      f.verdict = d.verdict;
      f.method = d.method;
      f.certified = d.certified;
      f.numeric_gap = d.numeric_gap;
      if (d.witness) f.detail = describe_product_witness(*d.witness);
      break;
    }
    case PriorAssumption::kSubcubeKnowledge: {
      const bool safe = oracle.safe_minimal_intervals(to_finite(a), to_finite(b));
      f.verdict = safe ? Verdict::kSafe : Verdict::kUnsafe;
      f.method = "subcube-intervals";
      f.certified = true;
      if (!safe) {
        f.detail = "a user knowing some records' exact contents learns A";
      }
      break;
    }
    case PriorAssumption::kLogSupermodular: {
      const PipelineResult r = run_criteria(supermodular_criteria(), a, b,
                                            "exhausted-supermodular-criteria");
      f.verdict = r.verdict;
      f.method = r.criterion;
      f.certified = r.verdict != Verdict::kUnknown;
      if (r.witness_distribution) {
        f.detail = "log-supermodular prior on " +
                   r.witness_distribution->support().to_string();
      } else if (r.witness_product) {
        f.detail = describe_product_witness(*r.witness_product);
      }
      break;
    }
  }
  return f;
}

std::vector<std::pair<WorldSet, WorldSet>> parity_pairs(unsigned n) {
  Rng rng(0x5EED5);
  std::vector<std::pair<WorldSet, WorldSet>> pairs;
  for (int i = 0; i < 25; ++i) {
    pairs.emplace_back(WorldSet::random(n, rng), WorldSet::random(n, rng));
  }
  const WorldSet a = WorldSet::random(n, rng);
  pairs.emplace_back(a, a);                        // B = A
  pairs.emplace_back(a, ~a);                       // B disjoint from A
  pairs.emplace_back(a, WorldSet::universe(n));    // vacuous disclosure
  pairs.emplace_back(a, WorldSet::empty(n));       // contradictory disclosure
  pairs.emplace_back(WorldSet::empty(n), a);       // A never holds
  pairs.emplace_back(WorldSet::universe(n), a);    // A always holds
  return pairs;
}

TEST(DecisionEngine, MatchesLegacyDecisionPaths) {
  const unsigned n = 3;
  AuditorOptions options;
  options.ascent.multistarts = 8;
  options.ascent.max_cycles = 60;

  auto family = std::make_shared<SubcubeSigma>(n);
  auto oracle = std::make_shared<IntervalOracle>(
      family, FiniteSet::universe(family->universe_size()));

  for (PriorAssumption prior :
       {PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
        PriorAssumption::kLogSupermodular, PriorAssumption::kSubcubeKnowledge}) {
    const DecisionEngine engine(n, prior, options);
    for (const auto& [a, b] : parity_pairs(n)) {
      AuditContext ctx;
      if (prior == PriorAssumption::kSubcubeKnowledge) {
        ctx.set_interval_oracle(oracle);
      }
      const EngineDecision got = engine.decide(a, b, ctx);
      const AuditFinding want =
          legacy_audit_sets(prior, a, b, options, *oracle);
      const std::string label = to_string(prior) + " A=" + a.to_string() +
                                " B=" + b.to_string();
      EXPECT_EQ(got.verdict, want.verdict) << label;
      EXPECT_EQ(got.method, want.method) << label;
      EXPECT_EQ(got.certified, want.certified) << label;
      EXPECT_EQ(got.detail, want.detail) << label;
      EXPECT_NEAR(got.numeric_gap, want.numeric_gap, 1e-12) << label;
    }
  }
}

TEST(DecisionEngine, MemoizesPairVerdicts) {
  const unsigned n = 3;
  const DecisionEngine engine(n, PriorAssumption::kProduct, {});
  Rng rng(0xF00D);
  const WorldSet a = WorldSet::random(n, rng);
  const WorldSet b = WorldSet::random(n, rng);
  AuditContext ctx;
  const EngineDecision first = engine.decide(a, b, ctx);
  EXPECT_EQ(ctx.memo_hits(), 0u);
  const EngineDecision again = engine.decide(a, b, ctx);
  EXPECT_EQ(ctx.memo_hits(), 1u);
  EXPECT_EQ(first.verdict, again.verdict);
  EXPECT_EQ(first.method, again.method);
}

// decide_incremental must be byte-identical to decide() at every step of a
// shrinking session, across all three serve tiers: fresh evaluation, the
// unchanged-S replay (dirty false), and the pinned monotone verdict once
// A cap S empties.
TEST(DecisionEngine, IncrementalMatchesDecideOnShrinkingSessions) {
  const unsigned n = 4;
  AuditorOptions options;
  options.ascent.multistarts = 8;
  options.ascent.max_cycles = 60;
  auto family = std::make_shared<SubcubeSigma>(n);
  auto oracle = std::make_shared<IntervalOracle>(
      family, FiniteSet::universe(family->universe_size()));
  Rng rng(0x1DE17A);

  for (PriorAssumption prior :
       {PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
        PriorAssumption::kSubcubeKnowledge}) {
    const DecisionEngine engine(n, prior, options);
    for (int session = 0; session < 8; ++session) {
      const WorldSet a = WorldSet::random(n, rng);
      AuditContext full_ctx;
      AuditContext inc_ctx;
      if (prior == PriorAssumption::kSubcubeKnowledge) {
        for (AuditContext* ctx : {&full_ctx, &inc_ctx}) {
          ctx->set_interval_oracle(oracle);
          ctx->prepare_subcube(a);  // both prepared: same deciding method
        }
      }
      IncrementalContext inc;
      WorldSet s = WorldSet::universe(n);
      const unsigned kill_step = 4 + rng.next_below(6);
      for (unsigned step = 0; step < 12; ++step) {
        const WorldSet prev = s;
        if (step == kill_step) {
          s &= ~a;  // empty A cap S: the monotone Safe verdict pins
        } else if (rng.next_below(4) != 0) {
          s &= WorldSet::random(n, rng, 0.8);
        }
        // Session::absorb marks the state dirty only on a real shrink.
        if (step == 0 || s != prev) inc.dirty = true;
        const EngineDecision want = engine.decide(a, s, full_ctx);
        const EngineDecision got = engine.decide_incremental(a, s, inc, inc_ctx);
        const std::string label = to_string(prior) + " session " +
                                  std::to_string(session) + " step " +
                                  std::to_string(step);
        EXPECT_EQ(got.verdict, want.verdict) << label;
        EXPECT_EQ(got.method, want.method) << label;
        EXPECT_EQ(got.certified, want.certified) << label;
        EXPECT_EQ(got.detail, want.detail) << label;
        EXPECT_NEAR(got.numeric_gap, want.numeric_gap, 1e-12) << label;
      }
      // Every step was served by exactly one tier.
      EXPECT_EQ(inc.evaluations + inc.served_unchanged + inc.served_pinned,
                12u);
      // The kill step pins Safe for the unrestricted and subcube cascades,
      // whose first stage carries the monotone flag. The product cascade is
      // built from legacy table criteria that never report monotone, so it
      // re-evaluates (still byte-identically) instead of pinning.
      if (prior != PriorAssumption::kProduct) {
        EXPECT_GT(inc.served_pinned, 0u);
      } else {
        EXPECT_EQ(inc.served_pinned, 0u);
      }
    }
  }
}

// The unchanged tier serves the recorded decision without rerunning the
// cascade: stage invocation counters must not move.
TEST(DecisionEngine, IncrementalUnchangedServesWithoutCascade) {
  const unsigned n = 3;
  const DecisionEngine engine(n, PriorAssumption::kUnrestricted, {});
  Rng rng(0xCAFE);
  const WorldSet a = WorldSet::random(n, rng);
  const WorldSet s = WorldSet::random(n, rng, 0.8);
  AuditContext ctx;
  ctx.reset_stages(engine.stage_names());
  IncrementalContext inc;
  inc.dirty = true;
  const EngineDecision first = engine.decide_incremental(a, s, inc, ctx);
  const std::size_t invocations_after_first =
      ctx.stage_stats().front().invocations;
  const EngineDecision again = engine.decide_incremental(a, s, inc, ctx);
  EXPECT_EQ(first.verdict, again.verdict);
  EXPECT_EQ(first.method, again.method);
  EXPECT_EQ(inc.served_unchanged, 1u);
  EXPECT_EQ(ctx.stage_stats().front().invocations, invocations_after_first);
}

TEST(DecisionEngine, ReportsIdenticalAcrossThreadCounts) {
  WorkloadOptions wl;
  wl.patients = 5;
  wl.queries = 40;
  wl.seed = 0xD15C;
  const Workload workload = make_hospital_workload(wl);

  std::string reference_report;
  std::vector<StageStats> reference_stats;
  std::size_t reference_memo_hits = 0;
  for (unsigned threads : {1u, 2u, 8u}) {
    AuditorOptions options;
    options.enable_sos = false;
    options.ascent.multistarts = 8;
    options.threads = threads;
    Auditor auditor(workload.universe, PriorAssumption::kProduct, options);
    const AuditReport report = auditor.audit(workload.log, "p0_cond");
    const std::string text = format_report(report);
    const std::vector<StageStats> stats = report.stage_stats();
    if (threads == 1) {
      reference_report = text;
      reference_stats = stats;
      reference_memo_hits = report.memo_hits();
      continue;
    }
    EXPECT_EQ(text, reference_report) << threads << " threads";
    EXPECT_EQ(report.memo_hits(), reference_memo_hits) << threads << " threads";
    ASSERT_EQ(stats.size(), reference_stats.size());
    for (std::size_t i = 0; i < reference_stats.size(); ++i) {
      EXPECT_EQ(stats[i].name, reference_stats[i].name);
      EXPECT_EQ(stats[i].invocations, reference_stats[i].invocations)
          << threads << " threads, stage " << reference_stats[i].name;
      EXPECT_EQ(stats[i].decisions, reference_stats[i].decisions)
          << threads << " threads, stage " << reference_stats[i].name;
    }
  }
}

TEST(Auditor, CompilesEachDistinctDisclosureOncePerAudit) {
  RecordUniverse u;
  u.add("x");
  u.add("y");
  AuditLog log;
  // Three users receive the same (query, answer) pair; one extra distinct one.
  log.record_with_answer("u1", "x", true);
  log.record_with_answer("u2", "x", true);
  log.record_with_answer("u3", "x", true);
  log.record_with_answer("u1", "y", false);

  Auditor auditor(u, PriorAssumption::kUnrestricted);
  reset_parse_query_call_count();
  reset_disclosed_set_call_count();
  const AuditReport report = auditor.audit(log, "x");

  // One parse for the audit query; the log's queries were parsed at record
  // time and must not be re-parsed by the audit.
  EXPECT_EQ(parse_query_call_count(), 1u);
  // Two distinct (text, answer) pairs -> exactly two compilations, although
  // four disclosures and two per-user conjunctions consumed the sets.
  EXPECT_EQ(disclosed_set_call_count(), 2u);
  ASSERT_EQ(report.per_disclosure.size(), 4u);
  // u2's and u3's conjunctions both equal the "x"-true disclosure; they
  // dedupe to one pair which the phase-2 memo then answers: one memo hit.
  EXPECT_EQ(report.memo_hits(), 1u);
}

TEST(Auditor, StageStatsExposedInReport) {
  RecordUniverse u;
  u.add("x");
  u.add("y");
  AuditLog log;
  log.record_with_answer("u1", "x", true);
  log.record_with_answer("u2", "x | y", true);
  Auditor auditor(u, PriorAssumption::kProduct);
  const AuditReport report = auditor.audit(log, "x");

  const std::vector<StageStats> stats = report.stage_stats();
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(stats[0].name, "theorem-3.11");
  std::size_t decisions = 0;
  for (const StageStats& s : stats) decisions += s.decisions;
  // Every decided pair was decided by exactly one stage.
  EXPECT_GT(decisions, 0u);
  const std::string text = format_stage_stats(report);
  EXPECT_NE(text.find("theorem-3.11"), std::string::npos);
  EXPECT_NE(text.find("memo hits"), std::string::npos);
}

TEST(AuditReport, CountSections) {
  AuditReport report;
  AuditFinding safe;
  safe.verdict = Verdict::kSafe;
  AuditFinding unsafe;
  unsafe.verdict = Verdict::kUnsafe;
  report.per_disclosure = {safe, unsafe, safe};
  report.per_user_cumulative = {unsafe, unsafe};

  EXPECT_EQ(report.count(Verdict::kSafe), 2u);
  EXPECT_EQ(report.count(Verdict::kUnsafe), 3u);
  EXPECT_EQ(report.count(Verdict::kSafe, AuditReport::Section::kPerDisclosure),
            2u);
  EXPECT_EQ(report.count(Verdict::kUnsafe, AuditReport::Section::kPerDisclosure),
            1u);
  EXPECT_EQ(report.count(Verdict::kUnsafe, AuditReport::Section::kPerUser), 2u);
  EXPECT_EQ(report.count(Verdict::kSafe, AuditReport::Section::kPerUser), 0u);
}

/// A stage that short-circuits every pair — registered in front of the
/// cascade it must win every decision.
class VetoStage : public CriterionStage {
 public:
  std::string_view name() const override { return "custom-veto"; }
  StageDecision decide(const WorldSet&, const WorldSet&,
                       AuditContext&) const override {
    StageDecision d;
    d.verdict = Verdict::kSafe;
    d.method = "custom-veto";
    d.certified = false;
    return d;
  }
};

TEST(DecisionEngine, RegisteredCustomStageRunsFirst) {
  RecordUniverse u;
  u.add("x");
  u.add("y");
  Auditor auditor(u, PriorAssumption::kProduct);
  auditor.engine().register_stage(std::make_unique<VetoStage>(), 0);
  ASSERT_EQ(auditor.engine().stage_names().front(), "custom-veto");

  // "x" vs "x" is flagged unsafe by the stock cascade; the veto stage now
  // decides it first.
  AuditLog log;
  log.record_with_answer("u1", "x", true);
  const AuditReport report = auditor.audit(log, "x");
  EXPECT_EQ(report.per_disclosure[0].verdict, Verdict::kSafe);
  // The engine's critical-coordinate projection prefixes the method ("y" is
  // irrelevant to "x" vs "x"); the stage label must still be the decider.
  EXPECT_EQ(report.per_disclosure[0].method, "projected[1/2]+custom-veto");
  const std::vector<StageStats> stats = report.stage_stats();
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(stats[0].name, "custom-veto");
  EXPECT_GT(stats[0].decisions, 0u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_GE(pool.size(), 1u);
  constexpr std::size_t kCount = 997;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, PropagatesWorkerExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives an exceptional batch.
  std::atomic<std::size_t> done{0};
  pool.parallel_for(8, [&](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 8u);
}

}  // namespace
}  // namespace epi
