#!/usr/bin/env python3
"""Line-coverage ratchet (CI `coverage` job, also runnable locally).

Aggregates gcov JSON output from a --coverage build and fails when any
subtree listed in the ratchet file drops below its floor. The floors only
go UP: when a PR raises coverage meaningfully, raise the floor to match so
the next regression is caught.

Usage: coverage_ratchet.py <build-dir> <repo-root> <ratchet-file>

Ratchet file: one `<path-prefix> <min-line-percent>` pair per line,
`#` comments allowed. Prefixes are repo-relative (e.g. `src/criteria/`).

Only needs the stock `gcov` from the gcc toolchain — no gcovr/lcov. Every
.gcda in the build tree is exported with `gcov --json-format`; executed
lines are unioned across translation units (a header inlined into ten TUs
counts as covered if ANY of them ran it).
"""

import collections
import glob
import gzip
import json
import os
import subprocess
import sys
import tempfile


def run_gcov(build_dir, scratch):
    gcda = glob.glob(os.path.join(build_dir, "**", "*.gcda"), recursive=True)
    if not gcda:
        sys.exit(f"no .gcda files under {build_dir}; "
                 "build with --coverage and run the tests first")
    for batch_start in range(0, len(gcda), 64):
        batch = gcda[batch_start:batch_start + 64]
        subprocess.run(["gcov", "--json-format"] + batch, cwd=scratch,
                       check=True, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL)
    return glob.glob(os.path.join(scratch, "*.gcov.json.gz"))


def collect_lines(json_files, repo_root):
    """{repo-relative source: {line-number: max-count}} across all TUs."""
    lines = collections.defaultdict(dict)
    for path in json_files:
        with gzip.open(path, "rt") as f:
            doc = json.load(f)
        for unit in doc.get("files", []):
            src = os.path.normpath(
                os.path.join(doc.get("current_working_directory", ""),
                             unit["file"]))
            src = os.path.relpath(os.path.realpath(src),
                                  os.path.realpath(repo_root))
            if src.startswith(".."):
                continue  # system header
            per_line = lines[src]
            for ln in unit["lines"]:
                n = ln["line_number"]
                per_line[n] = max(per_line.get(n, 0), ln["count"])
    return lines


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    build_dir, repo_root, ratchet_file = sys.argv[1:4]

    floors = []
    with open(ratchet_file) as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            prefix, floor = line.split()
            floors.append((prefix, float(floor)))

    with tempfile.TemporaryDirectory() as scratch:
        lines = collect_lines(run_gcov(build_dir, scratch), repo_root)

    failed = False
    for prefix, floor in floors:
        total = hit = 0
        for src, per_line in lines.items():
            if not src.startswith(prefix):
                continue
            total += len(per_line)
            hit += sum(1 for count in per_line.values() if count > 0)
        if total == 0:
            print(f"FAIL {prefix}: no instrumented lines found")
            failed = True
            continue
        percent = 100.0 * hit / total
        status = "ok  " if percent >= floor else "FAIL"
        if percent < floor:
            failed = True
        print(f"{status} {prefix}: {percent:.1f}% line coverage "
              f"({hit}/{total} lines, floor {floor:.1f}%)")
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
