#!/bin/sh
# End-to-end smoke test for the sharded serving tier (registered as CTest
# `shard_smoke`): boots 3 audit_server workers behind one shard_router and
# checks that
#   1. routed verdicts are byte-identical to the offline auditor and across
#      all concurrent clients (Prop. 3.10 parity survives sharding),
#   2. kill -9 of a worker mid-run loses nothing: replay-based rebalancing
#      keeps every session's verdicts and sequence numbers byte-identical to
#      the unkilled run (traffic after the kill diffs clean against traffic
#      before it),
#   3. runtime add_worker / remove_worker rebalances keep the same guarantee,
#   4. a wire `shutdown` to the router drains the in-ring workers and the
#      router itself (exit 0, "drained and stopped").
# Optionally drives the open-loop load generator against the router first and
# saves its JSON snapshot (the CI shard job uploads it).
# Usage: shard_smoke.sh <audit_server> <audit_client> <audit_cli>
#                       <shard_router> [loadgen [loadgen_json_out]]
set -u

server="${1:?usage: shard_smoke.sh <audit_server> <audit_client> <audit_cli> <shard_router> [loadgen [json_out]]}"
client="${2:?missing audit_client path}"
cli="${3:?missing audit_cli path}"
router="${4:?missing shard_router path}"
loadgen="${5:-}"
loadgen_json="${6:-}"

tmp="$(mktemp -d)"
pids=""
cleanup() {
  [ -n "$pids" ] && kill -9 $pids 2> /dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  [ -f "$tmp/router.err" ] && sed 's/^/  router: /' "$tmp/router.err" >&2
  for w in 1 2 3 4; do
    [ -f "$tmp/w$w.err" ] && sed "s/^/  worker$w: /" "$tmp/w$w.err" >&2
  done
  exit 1
}

# Same scenario as service_smoke.sh: no database changes between queries, so
# the server's (final-state) answers equal the logged ones.
cat > "$tmp/scenario.scn" <<'EOF'
record bob_hiv
record bob_transfusion
record bob_hepatitis
insert bob_transfusion
insert bob_hiv
query smoke bob_hiv
query smoke bob_hiv -> bob_transfusion
query smoke bob_hiv & bob_hepatitis
query smoke atmost(0, bob_hepatitis)
query smoke bob_transfusion
prior product
audit bob_hiv
EOF

# Offline ground truth.
"$cli" "$tmp/scenario.scn" > "$tmp/offline.txt" 2> "$tmp/offline.err" \
  || fail "offline audit_cli run failed"
sed -n 's/^\[log\] smoke: \(.*\) -> \(true\)$/\1\t\2/p;s/^\[log\] smoke: \(.*\) -> \(false\)$/\1\t\2/p' \
  "$tmp/offline.txt" > "$tmp/workload.tsv"
[ "$(wc -l < "$tmp/workload.tsv")" -eq 5 ] || fail "expected 5 logged queries"
awk '
  /^Per disclosure:/ { section = 1; next }
  /^Per user/        { section = 2; next }
  /witness:/         { next }
  section && / = (true|false) / {
    for (i = 1; i <= NF; i++) if ($i == "=") {
      print section "\t" $(i + 1) "\t" $(i + 2) "\t" $(i + 3)
      break
    }
  }' "$tmp/offline.txt" > "$tmp/offline_rows.tsv"

# Boot the shard: 3 workers, all serving the identical scenario, one router.
start_worker() {
  "$server" --listen "unix:$tmp/w$1.sock" --scenario "$tmp/scenario.scn" \
    > "$tmp/w$1.out" 2> "$tmp/w$1.err" &
  eval "w$1_pid=\$!"
  pids="$pids $!"
}
for w in 1 2 3; do start_worker "$w"; done
for w in 1 2 3; do
  i=0
  while [ ! -S "$tmp/w$w.sock" ]; do
    i=$((i + 1)); [ "$i" -gt 100 ] && fail "worker $w socket never appeared"
    sleep 0.1
  done
done

"$router" --listen "unix:$tmp/router.sock" \
  --worker "unix:$tmp/w1.sock" --worker "unix:$tmp/w2.sock" \
  --worker "unix:$tmp/w3.sock" \
  > "$tmp/router.out" 2> "$tmp/router.err" &
router_pid=$!
pids="$pids $router_pid"
i=0
while ! grep -q "listening on" "$tmp/router.out" 2> /dev/null; do
  i=$((i + 1)); [ "$i" -gt 100 ] && fail "router never reported its listener"
  kill -0 "$router_pid" 2> /dev/null || fail "router died during startup"
  sleep 0.1
done
connect="unix:$tmp/router.sock"

# Optional: open-loop load through the router before the correctness phases
# (the CI shard job snapshots this JSON against BENCH_loadgen.json).
# (--user-prefix keeps the load sessions disjoint from the correctness
# clients' user1..user4 sessions, whose sequence numbers the phases assert.)
if [ -n "$loadgen" ]; then
  if [ -n "$loadgen_json" ]; then
    "$loadgen" --connect "$connect" --user-prefix lg_user --rate 300 \
      --duration-s 5 --warmup-s 1 --json > "$loadgen_json" \
      || fail "loadgen lost responses"
  else
    "$loadgen" --connect "$connect" --user-prefix lg_user --rate 300 \
      --duration-s 2 --warmup-s 1 > "$tmp/loadgen.txt" \
      || fail "loadgen lost responses"
  fi
  # Long-session round: bounded monotone sessions (32 audits, then a
  # reset_session in the same open-loop schedule) exercise the workers'
  # per-session incremental state — build, delta steps, and reset
  # invalidation — under routed concurrency. Any lost or errored response
  # fails the round.
  "$loadgen" --connect "$connect" --user-prefix lg_sess --rate 300 \
    --duration-s 2 --warmup-s 1 --session-length 32 \
    > "$tmp/loadgen_session.txt" \
    || fail "long-session loadgen lost responses"
fi

# One phase = 4 concurrent clients (one user each) x 5 queries x N rounds.
run_phase() {
  phase="$1"; rounds="$2"
  n=1
  while [ "$n" -le 4 ]; do
    (
      awk -v u="user$n" -F'\t' '{ print u "\t" $1 "\t" $2 }' \
        "$tmp/workload.tsv" > "$tmp/workload.$n.tsv"
      "$client" --connect "$connect" --query-file "$tmp/workload.$n.tsv" \
        --repeat "$rounds" > "$tmp/$phase.$n.out" 2> "$tmp/$phase.$n.err"
      echo $? > "$tmp/$phase.$n.rc"
    ) &
    n=$((n + 1))
  done
}
wait_phase() {
  phase="$1"; lines="$2"
  n=1
  while [ "$n" -le 4 ]; do
    while [ ! -f "$tmp/$phase.$n.rc" ]; do sleep 0.1; done
    [ "$(cat "$tmp/$phase.$n.rc")" -eq 0 ] \
      || fail "$phase client $n exited nonzero: $(cat "$tmp/$phase.$n.err")"
    [ "$(wc -l < "$tmp/$phase.$n.out")" -eq "$lines" ] \
      || fail "$phase client $n produced $(wc -l < "$tmp/$phase.$n.out") lines, wanted $lines"
    n=$((n + 1))
  done
}
# Client columns: user(1) query(2) answer(3) verdict(4) method(5) cached(6)
# cum_verdict(7) cum_method(8) sequence(9). Within a phase the user and
# cached columns vary; across phases the sequence column advances too.
norm_phase() {       # same-phase normal form (keeps sequences)
  cut -f2-5,7- "$tmp/$1.$2.out" > "$tmp/$1.norm.$2"
}
norm_cross() {       # cross-phase normal form (drops sequences; drops the
                     # first round, where a young session's cumulative method
                     # annotation legitimately differs from steady state)
  tail -n +6 "$tmp/$1.$2.out" | cut -f2-5,7-8 > "$tmp/$1.cross.$2"
}

# Phase A: steady state across 3 workers.
run_phase a 20; wait_phase a 100

# Phase B: same sessions continue while worker 2 is SIGKILLed mid-run (the
# phase is 5x longer than A so requests are still in flight when the kill
# lands). The router must replay each affected session onto its new owner;
# clients see no errors, no gaps and no duplicates.
run_phase b 100
sleep 0.3
kill -9 "$w2_pid" 2> /dev/null || fail "worker 2 already gone before the kill"
wait_phase b 500
grep -q "is gone" "$tmp/router.err" || fail "router never noticed the kill"

# Phase C: runtime membership changes under the same sessions — a fourth
# worker joins, worker 1 drains out.
start_worker 4
i=0
while [ ! -S "$tmp/w4.sock" ]; do
  i=$((i + 1)); [ "$i" -gt 100 ] && fail "worker 4 socket never appeared"
  sleep 0.1
done
"$client" --connect "$connect" --op add_worker --addr "unix:$tmp/w4.sock" \
  > /dev/null || fail "add_worker op failed"
"$client" --connect "$connect" --op remove_worker --addr "unix:$tmp/w1.sock" \
  > /dev/null || fail "remove_worker op failed"
run_phase c 20; wait_phase c 100

# (1) Within each phase all clients served byte-identical rows, sequences
# included.
for phase in a b c; do
  n=1
  while [ "$n" -le 4 ]; do norm_phase "$phase" "$n"; n=$((n + 1)); done
  for n in 2 3 4; do
    diff -u "$tmp/$phase.norm.1" "$tmp/$phase.norm.$n" > /dev/null \
      || fail "phase $phase client $n differs from client 1"
  done
done

# (2) Across the kill and the membership changes nothing shifted: every
# phase, modulo the advancing sequence column and the warm-up round, is the
# phase-A steady-state round repeated. (Phases have different lengths, so
# each is diffed against the 5-row cycle tiled to its own round count.)
tail -n +6 "$tmp/a.1.out" | head -5 | cut -f2-5,7-8 > "$tmp/cycle"
tile_cycle() {
  r=0
  while [ "$r" -lt "$1" ]; do cat "$tmp/cycle"; r=$((r + 1)); done
}
for spec in a:19 b:99 c:19; do
  phase="${spec%%:*}"; rounds="${spec#*:}"
  norm_cross "$phase" 1
  tile_cycle "$rounds" > "$tmp/$phase.want"
  diff -u "$tmp/$phase.want" "$tmp/$phase.cross.1" > /dev/null \
    || fail "phase $phase verdicts drifted from the steady-state cycle"
done

# (3) Sequences prove continuity: phase A covers 1..100, B 101..600 (the
# kill lost/duplicated nothing), C 601..700.
for check in a:1:1 a:100:100 b:1:101 b:500:600 c:1:601 c:100:700; do
  phase="${check%%:*}"; rest="${check#*:}"
  line="${rest%%:*}"; want="${rest#*:}"
  got="$(sed -n "${line}p" "$tmp/$phase.1.out" | awk -F'\t' '{print $NF}')"
  [ "$got" = "$want" ] \
    || fail "phase $phase line $line sequence: got '$got', want '$want'"
done

# (4) Parity with the offline auditor (first round of phase A).
k=1
while [ "$k" -le 5 ]; do
  offline_row="$(grep '^1	' "$tmp/offline_rows.tsv" | sed -n "${k}p")"
  line="$(sed -n "${k}p" "$tmp/a.1.out")"
  [ "$(printf '%s' "$line" | cut -f3-5)" = "$(printf '%s' "$offline_row" | cut -f2-4)" ] \
    || fail "disclosure $k diverges from the offline auditor"
  k=$((k + 1))
done
cumulative_row="$(grep '^2	' "$tmp/offline_rows.tsv")"
line5="$(sed -n '5p' "$tmp/a.1.out")"
[ "$(printf '%s' "$line5" | cut -f7-8)" = "$(printf '%s' "$cumulative_row" | cut -f3-4)" ] \
  || fail "cumulative verdict diverges from the offline auditor"

# (5) Wire shutdown cascades: router drains its in-ring workers (3 and 4)
# and exits 0. Worker 1 drained out of the ring earlier and worker 2 is
# dead, so neither gets the broadcast.
"$client" --connect "$connect" --op shutdown > /dev/null \
  || fail "shutdown op failed"
i=0
while kill -0 "$router_pid" 2> /dev/null; do
  i=$((i + 1)); [ "$i" -gt 100 ] && fail "router did not exit after shutdown"
  sleep 0.1
done
grep -q "drained and stopped" "$tmp/router.err" \
  || fail "router did not report a graceful drain"
for w in 3 4; do
  pid="$(eval echo "\$w${w}_pid")"
  i=0
  while kill -0 "$pid" 2> /dev/null; do
    i=$((i + 1)); [ "$i" -gt 100 ] && fail "worker $w did not exit after shutdown"
    sleep 0.1
  done
  grep -q "drained and stopped" "$tmp/w$w.err" \
    || fail "worker $w did not report a graceful drain"
done

echo "shard smoke OK (3 workers, kill -9 + add/remove rebalance, offline parity)"
