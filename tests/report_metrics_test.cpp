// The metrics-backed report views and the Status-first API surface:
// AuditReport::stage_stats()/memo_hits() derived from the metrics snapshot
// must agree with the raw counters at every thread count, count() must
// respect its Section argument, and the try_* / validate() entry points
// must return Status instead of throwing.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/scenario.h"
#include "core/workload.h"
#include "db/parser.h"
#include "engine/decision_engine.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace epi {
namespace {

TEST(ReportMetrics, StageStatsAndMemoHitsAreViewsOverSnapshot) {
  WorkloadOptions wl;
  wl.patients = 5;
  wl.queries = 40;
  wl.seed = 0xD15C;
  const Workload workload = make_hospital_workload(wl);

  std::vector<StageStats> reference;
  std::size_t reference_memo = 0;
  for (unsigned threads : {1u, 4u, 8u}) {
    AuditorOptions options;
    options.enable_sos = false;
    options.ascent.multistarts = 8;
    options.threads = threads;
    Auditor auditor(workload.universe, PriorAssumption::kProduct, options);
    const AuditReport report = auditor.audit(workload.log, "p0_cond");

    const std::vector<StageStats> stats = report.stage_stats();
    ASSERT_FALSE(stats.empty()) << threads << " threads";

    // Each derived row must mirror the raw engine.stage.* counters it is a
    // view over, keyed by zero-padded cascade index.
    for (std::size_t i = 0; i < stats.size(); ++i) {
      char prefix[64];
      std::snprintf(prefix, sizeof(prefix), "engine.stage.%02zu.%s.", i,
                    stats[i].name.c_str());
      const std::string base(prefix);
      EXPECT_EQ(static_cast<std::int64_t>(stats[i].invocations),
                report.metrics.counter(base + "invocations"))
          << base;
      EXPECT_EQ(static_cast<std::int64_t>(stats[i].decisions),
                report.metrics.counter(base + "decisions"))
          << base;
    }
    EXPECT_EQ(static_cast<std::int64_t>(report.memo_hits()),
              report.metrics.counter("engine.memo.hits"));

    // Counts are deterministic: identical across thread counts.
    if (threads == 1) {
      reference = stats;
      reference_memo = report.memo_hits();
      continue;
    }
    EXPECT_EQ(report.memo_hits(), reference_memo) << threads << " threads";
    ASSERT_EQ(stats.size(), reference.size()) << threads << " threads";
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(stats[i].name, reference[i].name);
      EXPECT_EQ(stats[i].invocations, reference[i].invocations)
          << threads << " threads, stage " << reference[i].name;
      EXPECT_EQ(stats[i].decisions, reference[i].decisions)
          << threads << " threads, stage " << reference[i].name;
    }
  }
}

TEST(ReportMetrics, StageStatsPreservesCascadeOrder) {
  RecordUniverse u;
  u.add("x");
  u.add("y");
  AuditLog log;
  log.record_with_answer("u1", "x | y", true);
  Auditor auditor(u, PriorAssumption::kProduct);
  const AuditReport report = auditor.audit(log, "x");

  const std::vector<StageStats> stats = report.stage_stats();
  ASSERT_FALSE(stats.empty());
  // The derived rows come back in cascade order with no duplicates.
  EXPECT_EQ(stats[0].name, auditor.engine().stage_names()[0]);
  std::set<std::string> names;
  for (const StageStats& s : stats) EXPECT_TRUE(names.insert(s.name).second);
  // Invocations cascade downward: a later stage never runs more often than
  // the first stage admits pairs.
  for (const StageStats& s : stats) {
    EXPECT_LE(s.invocations, stats[0].invocations) << s.name;
    EXPECT_LE(s.decisions, s.invocations) << s.name;
  }
}

TEST(ReportMetrics, CountHonorsSectionArgument) {
  AuditReport report;
  AuditFinding safe;
  safe.verdict = Verdict::kSafe;
  AuditFinding unsafe;
  unsafe.verdict = Verdict::kUnsafe;
  AuditFinding unknown;
  unknown.verdict = Verdict::kUnknown;
  report.per_disclosure = {safe, unsafe, unknown, safe};
  report.per_user_cumulative = {unsafe, unknown};

  using Section = AuditReport::Section;
  EXPECT_EQ(report.count(Verdict::kSafe, Section::kPerDisclosure), 2u);
  EXPECT_EQ(report.count(Verdict::kSafe, Section::kPerUser), 0u);
  EXPECT_EQ(report.count(Verdict::kSafe), 2u);
  EXPECT_EQ(report.count(Verdict::kUnsafe, Section::kPerDisclosure), 1u);
  EXPECT_EQ(report.count(Verdict::kUnsafe, Section::kPerUser), 1u);
  EXPECT_EQ(report.count(Verdict::kUnsafe), 2u);
  EXPECT_EQ(report.count(Verdict::kUnknown, Section::kPerDisclosure), 1u);
  EXPECT_EQ(report.count(Verdict::kUnknown, Section::kPerUser), 1u);
  EXPECT_EQ(report.count(Verdict::kUnknown), 2u);
}

TEST(StatusApi, TryParseQuery) {
  QueryPtr q;
  const Status ok = try_parse_query("a & !b", &q);
  EXPECT_TRUE(ok.ok()) << ok.to_string();
  ASSERT_NE(q.get(), nullptr);

  const Status bad = try_parse_query("a &&& b", &q);
  EXPECT_EQ(bad.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(q.get(), nullptr);
  // The message names the query and the position.
  EXPECT_NE(bad.message().find("a &&& b"), std::string::npos);
  EXPECT_NE(bad.message().find("position"), std::string::npos);
}

TEST(StatusApi, TryRunScenario) {
  ScenarioResult result;
  const Status ok = try_run_scenario(
      "record x\ninsert x\nquery u1 x\naudit x\n", &result);
  ASSERT_TRUE(ok.ok()) << ok.to_string();
  EXPECT_EQ(result.reports.size(), 1u);

  const Status bad = try_run_scenario("record x\nbogus directive\n", &result);
  EXPECT_EQ(bad.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(bad.message().find("line 2"), std::string::npos);
}

TEST(StatusApi, AuditorOptionsValidate) {
  AuditorOptions good;
  EXPECT_TRUE(good.validate().ok());

  AuditorOptions contradictory;
  contradictory.enable_sos = true;
  contradictory.max_sos_records = 0;
  EXPECT_EQ(contradictory.validate().code(), Status::Code::kInvalidArgument);

  AuditorOptions no_starts;
  no_starts.ascent.multistarts = 0;
  EXPECT_EQ(no_starts.validate().code(), Status::Code::kInvalidArgument);

  AuditorOptions no_cycles;
  no_cycles.ascent.max_cycles = 0;
  EXPECT_EQ(no_cycles.validate().code(), Status::Code::kInvalidArgument);
}

TEST(StatusApi, ResolvedThreadsNeverZero) {
  AuditorOptions options;
  options.threads = 0;
  EXPECT_GE(options.resolved_threads(), 1u);
  options.threads = 3;
  EXPECT_EQ(options.resolved_threads(), 3u);
}

TEST(StatusApi, ThreadPoolRejectsZeroThreads) {
  EXPECT_THROW(ThreadPool{0}, std::invalid_argument);
}

TEST(Tracing, ParallelAuditEmitsWellFormedSpanTreeThatRoundTrips) {
#ifdef EPI_OBS_NOOP
  GTEST_SKIP() << "tracing compiled out (EPI_OBS_NOOP)";
#endif
  WorkloadOptions wl;
  wl.patients = 5;
  wl.queries = 40;
  wl.seed = 0xD15C;
  const Workload workload = make_hospital_workload(wl);

  AuditorOptions options;
  options.enable_sos = false;
  options.ascent.multistarts = 8;
  options.threads = 4;
  Auditor auditor(workload.universe, PriorAssumption::kProduct, options);

  auto trace = std::make_shared<obs::Trace>();
  obs::install_trace(trace);
  auditor.audit(workload.log, "p0_cond");
  obs::install_trace(nullptr);

  const std::vector<obs::SpanRecord> spans = trace->spans();
  ASSERT_FALSE(spans.empty());
  std::set<std::uint64_t> ids;
  std::set<std::string> names;
  for (const obs::SpanRecord& s : spans) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate id " << s.id;
    names.insert(s.name);
  }
  // Parents resolve within the trace (audit.run closes last, so every
  // recorded parent is present).
  for (const obs::SpanRecord& s : spans) {
    if (s.parent != 0) EXPECT_TRUE(ids.count(s.parent)) << s.name;
  }
  // The tree covers the engine stages and the pool dispatch.
  EXPECT_TRUE(names.count("audit.run"));
  EXPECT_TRUE(names.count("audit.decide-disclosures"));
  EXPECT_TRUE(names.count("engine.decide"));
  EXPECT_TRUE(names.count("pool.task"));
  EXPECT_TRUE(names.count("engine.stage.theorem-3.11"));

  // And it survives the JSON exporter round-trip field-for-field.
  std::vector<obs::SpanRecord> parsed;
  const Status status = obs::spans_from_json(obs::spans_to_json(spans), &parsed);
  ASSERT_TRUE(status.ok()) << status.to_string();
  ASSERT_EQ(parsed.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(parsed[i].id, spans[i].id);
    EXPECT_EQ(parsed[i].parent, spans[i].parent);
    EXPECT_EQ(parsed[i].name, spans[i].name);
    EXPECT_EQ(parsed[i].attributes, spans[i].attributes);
  }
}

TEST(Tracing, OracleSpansAppearUnderSubcubeAudits) {
#ifdef EPI_OBS_NOOP
  GTEST_SKIP() << "tracing compiled out (EPI_OBS_NOOP)";
#endif
  ScenarioResult result;
  auto trace = std::make_shared<obs::Trace>();
  obs::install_trace(trace);
  const Status status = try_run_scenario(
      "record x\nrecord y\ninsert x\nquery u1 x | y\nquery u2 x\n"
      "prior subcube-knowledge\naudit x\n",
      &result);
  obs::install_trace(nullptr);
  ASSERT_TRUE(status.ok()) << status.to_string();

  std::set<std::string> names;
  for (const obs::SpanRecord& s : trace->spans()) names.insert(s.name);
  EXPECT_TRUE(names.count("audit.prepare-oracle"));
  EXPECT_TRUE(names.count("oracle.prepare"));
  EXPECT_TRUE(names.count("oracle.prepared-safe"));
  EXPECT_TRUE(names.count("parser.parse"));
}

}  // namespace
}  // namespace epi
