#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "possibilistic/intervals.h"
#include "possibilistic/knowledge.h"
#include "possibilistic/rectangles.h"
#include "possibilistic/safe.h"

namespace epi {
namespace {

// The Figure 1 reconstruction: 14 x 7 grid, A-complement is a discretized
// ellipse chosen so that the three minimal intervals from omega_1 = (1,1)
// match the paper: (1,1)-(4,4), (1,1)-(5,3) and (1,1)-(6,2).
struct Figure1 {
  GridDomain grid{14, 7};
  FiniteSet a_bar;
  FiniteSet a;
  std::size_t omega1;

  Figure1()
      : a_bar(grid.ellipse(9.0, 4.0, 5.2, 2.9)),
        a(~a_bar),
        omega1(grid.index(1, 1)) {}
};

std::shared_ptr<const RectangleSigma> make_rect_family(const GridDomain& grid) {
  return std::make_shared<RectangleSigma>(grid);
}

TEST(GridDomain, IndexingRoundTrip) {
  GridDomain g(14, 7);
  EXPECT_EQ(g.size(), 98u);
  const std::size_t idx = g.index(5, 3);
  EXPECT_EQ(g.x_of(idx), 5u);
  EXPECT_EQ(g.y_of(idx), 3u);
  EXPECT_THROW(g.index(0, 1), std::out_of_range);
  EXPECT_THROW(g.index(15, 1), std::out_of_range);
}

TEST(GridDomain, RectangleContents) {
  GridDomain g(4, 3);
  FiniteSet r = g.rectangle(2, 1, 3, 2);
  EXPECT_EQ(r.count(), 4u);
  EXPECT_TRUE(r.contains(g.index(2, 1)));
  EXPECT_TRUE(r.contains(g.index(3, 2)));
  EXPECT_FALSE(r.contains(g.index(1, 1)));
  EXPECT_THROW(g.rectangle(3, 1, 2, 2), std::invalid_argument);
}

TEST(RectangleSigma, ContainsExactlyRectangles) {
  GridDomain g(4, 3);
  RectangleSigma sigma(g);
  EXPECT_TRUE(sigma.contains(g.rectangle(1, 1, 4, 3)));
  EXPECT_TRUE(sigma.contains(g.rectangle(2, 2, 2, 2)));
  FiniteSet not_rect = g.rectangle(1, 1, 2, 1) | g.rectangle(1, 2, 1, 2);
  EXPECT_FALSE(sigma.contains(not_rect));
  EXPECT_FALSE(sigma.contains(FiniteSet(g.size())));
}

TEST(RectangleSigma, EnumerationCount) {
  GridDomain g(4, 3);
  RectangleSigma sigma(g);
  // 4*5/2 * 3*4/2 = 10 * 6 = 60 rectangles.
  EXPECT_EQ(sigma.enumerate().size(), 60u);
  EXPECT_TRUE(sigma.is_intersection_closed());
}

TEST(RectangleSigma, IntervalIsBoundingBox) {
  GridDomain g(14, 7);
  RectangleSigma sigma(g);
  auto iv = sigma.interval(g.index(1, 1), g.index(4, 4));
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(*iv, g.rectangle(1, 1, 4, 4));
}

TEST(Figure1, PaperIntervals) {
  // "For omega_1 and omega_2 ... the light-grey rectangle from (1,1) to
  // (4,4); for omega_1 and omega_2' ... from (1,1) to (9,3)."
  Figure1 fig;
  IntervalOracle oracle(make_rect_family(fig.grid), FiniteSet::universe(fig.grid.size()));
  auto iv = oracle.interval(fig.omega1, fig.grid.index(4, 4));
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(*iv, fig.grid.rectangle(1, 1, 4, 4));
  auto iv2 = oracle.interval(fig.omega1, fig.grid.index(9, 3));
  ASSERT_TRUE(iv2.has_value());
  EXPECT_EQ(*iv2, fig.grid.rectangle(1, 1, 9, 3));
}

TEST(Figure1, ThreeMinimalIntervals) {
  // Example 4.9: the three minimal intervals from omega_1 to A-bar are the
  // rectangles (1,1)-(4,4), (1,1)-(5,3) and (1,1)-(6,2).
  Figure1 fig;
  IntervalOracle oracle(make_rect_family(fig.grid), FiniteSet::universe(fig.grid.size()));
  auto minimal = oracle.minimal_intervals(fig.omega1, fig.a_bar);
  ASSERT_EQ(minimal.size(), 3u);
  auto expect_in = [&](const FiniteSet& rect) {
    EXPECT_TRUE(std::find(minimal.begin(), minimal.end(), rect) != minimal.end());
  };
  expect_in(fig.grid.rectangle(1, 1, 4, 4));
  expect_in(fig.grid.rectangle(1, 1, 5, 3));
  expect_in(fig.grid.rectangle(1, 1, 6, 2));
}

TEST(Figure1, DeltaClassesAreTheEllipseCorners) {
  Figure1 fig;
  IntervalOracle oracle(make_rect_family(fig.grid), FiniteSet::universe(fig.grid.size()));
  auto classes = oracle.delta_partition(fig.a_bar, fig.omega1);
  ASSERT_EQ(classes.size(), 3u);
  // With this ellipse each minimal interval meets A-bar in a single corner.
  std::vector<FiniteSet> expected = {
      FiniteSet::singleton(fig.grid.size(), fig.grid.index(4, 4)),
      FiniteSet::singleton(fig.grid.size(), fig.grid.index(5, 3)),
      FiniteSet::singleton(fig.grid.size(), fig.grid.index(6, 2))};
  for (const auto& e : expected) {
    EXPECT_TRUE(std::find(classes.begin(), classes.end(), e) != classes.end());
  }
}

TEST(Figure1, DeltaClassesAreDisjoint) {
  // Proposition 4.10: distinct classes are disjoint.
  Figure1 fig;
  IntervalOracle oracle(make_rect_family(fig.grid), FiniteSet::universe(fig.grid.size()));
  fig.a.visit([&](std::size_t w1) {
    auto classes = oracle.delta_partition(fig.a_bar, w1);
    for (std::size_t i = 0; i < classes.size(); ++i) {
      for (std::size_t j = i + 1; j < classes.size(); ++j) {
        ASSERT_TRUE(classes[i].disjoint_with(classes[j])) << "w1=" << w1;
      }
    }
  });
}

TEST(Figure1, SafeIffBMeetsEveryMinimalInterval) {
  // "A disclosed set B is private, assuming omega* = omega_1, iff B
  // intersects each of these three intervals inside A-bar."
  Figure1 fig;
  FiniteSet c = FiniteSet::singleton(fig.grid.size(), fig.omega1);
  IntervalOracle oracle(make_rect_family(fig.grid), c);

  // B covering all three corners (plus omega_1 so the disclosure is true).
  FiniteSet b_good(fig.grid.size(), {fig.omega1, fig.grid.index(4, 4),
                                     fig.grid.index(5, 3), fig.grid.index(6, 2)});
  EXPECT_TRUE(oracle.safe_minimal_intervals(fig.a, b_good));

  // B missing the (6,2) corner's interval entirely.
  FiniteSet b_bad(fig.grid.size(), {fig.omega1, fig.grid.index(4, 4), fig.grid.index(5, 3)});
  EXPECT_FALSE(oracle.safe_minimal_intervals(fig.a, b_bad));
}

TEST(RectangleFamily, HasTightIntervals) {
  GridDomain g(5, 4);
  IntervalOracle oracle(make_rect_family(g), FiniteSet::universe(g.size()));
  EXPECT_TRUE(oracle.has_tight_intervals());
}

TEST(Remark42, SingleSetFamilyIsNotTight) {
  // Omega = {0,1,2}, Sigma = {Omega}: B1={0,2} and B2={1,2} each protect
  // A={2} but their intersection {2} does not; intervals are not tight and
  // no beta function exists.
  const std::size_t m = 3;
  auto sigma = std::make_shared<ExplicitSigma>(
      std::vector<FiniteSet>{FiniteSet::universe(m)});
  IntervalOracle oracle(sigma, FiniteSet::universe(m));
  EXPECT_FALSE(oracle.has_tight_intervals());
  EXPECT_FALSE(oracle.beta(FiniteSet(m, {2})).has_value());

  auto k = SecondLevelKnowledge::product(FiniteSet::universe(m),
                                         sigma->enumerate());
  FiniteSet a(m, {2});
  FiniteSet b1(m, {0, 2}), b2(m, {1, 2});
  EXPECT_TRUE(safe_possibilistic(k, a, b1));
  EXPECT_TRUE(safe_possibilistic(k, a, b2));
  EXPECT_FALSE(safe_possibilistic(k, a, b1 & b2));
  // ... consistent with Prop. 3.10 because neither B1 nor B2 is K-preserving.
  EXPECT_FALSE(k.is_preserving(b1));
  EXPECT_FALSE(k.is_preserving(b2));
}

TEST(IntervalOracle, RejectsNonClosedFamily) {
  std::vector<FiniteSet> sets = {FiniteSet(4, {0, 1, 2}), FiniteSet(4, {1, 2, 3})};
  auto sigma = std::make_shared<ExplicitSigma>(sets);
  EXPECT_THROW(IntervalOracle(sigma, FiniteSet::universe(4)), std::invalid_argument);
}

// Property: for intersection-closed K = C (x) Sigma, all three privacy tests
// (Def. 3.1 direct, Prop. 4.5 all intervals, Prop. 4.8 minimal intervals)
// agree on random instances.
TEST(IntervalOracle, AgreesWithDefinitionOnRandomClosedFamilies) {
  Rng rng(91);
  int verified = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t m = 6;
    std::vector<FiniteSet> seed;
    for (int i = 0; i < 3; ++i) {
      FiniteSet s = FiniteSet::random(m, rng, 0.5);
      if (!s.is_empty()) seed.push_back(s);
    }
    if (seed.empty()) continue;
    auto sigma = std::make_shared<ExplicitSigma>(
        ExplicitSigma(seed).intersection_closure());
    FiniteSet c = FiniteSet::random(m, rng, 0.8);
    if (c.is_empty()) c.insert(0);
    auto k = SecondLevelKnowledge::product(c, sigma->enumerate());
    if (k.empty()) continue;
    FiniteSet a = FiniteSet::random(m, rng, 0.5);
    FiniteSet b = FiniteSet::random(m, rng, 0.6);

    IntervalOracle oracle(sigma, c);
    const bool direct = safe_possibilistic(k, a, b);
    EXPECT_EQ(direct, oracle.safe_all_intervals(a, b)) << "trial " << trial;
    EXPECT_EQ(direct, oracle.safe_minimal_intervals(a, b)) << "trial " << trial;
    ++verified;
  }
  EXPECT_GT(verified, 50);
}

// Property: on the rectangle family (tight intervals), the beta margin of
// Corollary 4.14 characterizes safety exactly.
TEST(IntervalOracle, BetaCharacterizesSafetyOnRectangles) {
  GridDomain g(5, 4);
  auto sigma = make_rect_family(g);
  IntervalOracle oracle(sigma, FiniteSet::universe(g.size()));
  Rng rng(101);
  FiniteSet a = FiniteSet::random(g.size(), rng, 0.5);
  auto beta = oracle.beta(a);
  ASSERT_TRUE(beta.has_value());

  auto k = SecondLevelKnowledge::product(FiniteSet::universe(g.size()),
                                         sigma->enumerate());
  for (int trial = 0; trial < 40; ++trial) {
    FiniteSet b = FiniteSet::random(g.size(), rng, 0.5);
    bool beta_safe = true;
    (a & b).visit([&](std::size_t w1) {
      if (!(*beta)[w1].subset_of(b)) beta_safe = false;
    });
    EXPECT_EQ(beta_safe, safe_possibilistic(k, a, b)) << "trial " << trial;
  }
}

TEST(IntervalOracle, PreparedAuditMatchesDirect) {
  GridDomain g(6, 4);
  auto sigma = make_rect_family(g);
  IntervalOracle oracle(sigma, FiniteSet::universe(g.size()));
  Rng rng(113);
  FiniteSet a = FiniteSet::random(g.size(), rng, 0.4);
  auto prepared = oracle.prepare(a);
  for (int trial = 0; trial < 30; ++trial) {
    FiniteSet b = FiniteSet::random(g.size(), rng, 0.5);
    EXPECT_EQ(prepared.safe(b), oracle.safe_minimal_intervals(a, b));
  }
}

// The incremental Corollary 4.12 index must agree with the full
// PreparedAudit rescan at every step of a shrinking chain — the streaming
// session shape — including its O(1) active_empty pinning signal.
TEST(IncrementalSafe, MatchesPreparedSafeOnShrinkingChains) {
  GridDomain g(6, 4);
  auto sigma = make_rect_family(g);
  IntervalOracle oracle(sigma, FiniteSet::universe(g.size()));
  Rng rng(127);
  for (int chain = 0; chain < 20; ++chain) {
    const FiniteSet a = FiniteSet::random(g.size(), rng, 0.3);
    auto prepared =
        std::make_shared<const IntervalOracle::PreparedAudit>(oracle.prepare(a));
    IntervalOracle::IncrementalSafe index(prepared);
    EXPECT_FALSE(index.initialized());
    FiniteSet s = FiniteSet::universe(g.size());
    index.reset(s);
    for (int step = 0; step < 15; ++step) {
      s = s & FiniteSet::random(g.size(), rng, 0.8);
      ASSERT_TRUE(index.shrink_to(s)) << "chain " << chain << " step " << step;
      EXPECT_EQ(index.safe(), prepared->safe(s))
          << "chain " << chain << " step " << step;
      EXPECT_EQ(index.active_empty(), (a & s).is_empty())
          << "chain " << chain << " step " << step;
    }
  }
}

// shrink_to refuses a non-subset without touching the counters; reset()
// re-derives them for the new set, matching the rescan again.
TEST(IncrementalSafe, RejectsNonSubsetAndRecoversViaReset) {
  GridDomain g(5, 3);
  auto sigma = make_rect_family(g);
  IntervalOracle oracle(sigma, FiniteSet::universe(g.size()));
  Rng rng(131);
  const FiniteSet a = FiniteSet::random(g.size(), rng, 0.4);
  auto prepared =
      std::make_shared<const IntervalOracle::PreparedAudit>(oracle.prepare(a));
  IntervalOracle::IncrementalSafe index(prepared);

  const FiniteSet small = FiniteSet::random(g.size(), rng, 0.3);
  index.reset(small);
  const bool was_safe = index.safe();

  FiniteSet grown = small;
  std::size_t extra = g.size();
  for (std::size_t e = 0; e < g.size(); ++e) {
    if (!small.contains(e)) {
      extra = e;
      break;
    }
  }
  ASSERT_LT(extra, g.size());
  grown.insert(extra);
  EXPECT_FALSE(index.shrink_to(grown));  // not a subset: refused
  EXPECT_EQ(index.safe(), was_safe);     // untouched
  EXPECT_EQ(index.current(), small);

  index.reset(grown);
  EXPECT_EQ(index.safe(), prepared->safe(grown));
}

TEST(GridDomain, RenderAscii) {
  GridDomain g(3, 2);
  FiniteSet s(g.size(), {g.index(1, 1), g.index(3, 2)});
  EXPECT_EQ(g.render(s), "#..\n..#\n");
}

}  // namespace
}  // namespace epi
