// Tests for the subcube knowledge family and its auditor integration.
#include <gtest/gtest.h>

#include <memory>

#include "core/auditor.h"
#include "possibilistic/intervals.h"
#include "possibilistic/knowledge.h"
#include "possibilistic/safe.h"
#include "possibilistic/subcubes.h"
#include "worlds/finite_set.h"

namespace epi {
namespace {

TEST(SubcubeSigma, BoxContents) {
  SubcubeSigma sigma(3);
  const FiniteSet full = sigma.box(MatchVector::from_string("***"));
  EXPECT_TRUE(full.is_universe());
  const FiniteSet point = sigma.box(MatchVector::from_string("101"));
  EXPECT_EQ(point.count(), 1u);
  EXPECT_TRUE(point.contains(world_from_string("101")));
  const FiniteSet edge = sigma.box(MatchVector::from_string("1*0"));
  EXPECT_EQ(edge.count(), 2u);
}

TEST(SubcubeSigma, ContainsExactlySubcubes) {
  SubcubeSigma sigma(3);
  EXPECT_TRUE(sigma.contains(sigma.box(MatchVector::from_string("0**"))));
  EXPECT_TRUE(sigma.contains(FiniteSet::singleton(8, 5)));
  // {000, 011} agrees on no pattern of a 2-element subcube (differs in two
  // coordinates) — not a subcube.
  FiniteSet not_cube(8, {0, 6});
  EXPECT_FALSE(sigma.contains(not_cube));
  EXPECT_FALSE(sigma.contains(FiniteSet(8)));
}

TEST(SubcubeSigma, EnumerationCountsThreePowN) {
  SubcubeSigma sigma(3);
  // 3^3 = 27 match vectors, with duplicates impossible (distinct boxes).
  EXPECT_EQ(sigma.enumerate().size(), 27u);
}

TEST(SubcubeSigma, IntervalIsBoxOfMatch) {
  // The Section 4 / Section 5 bridge: I(w1, w2) = Box(Match(w1, w2)).
  SubcubeSigma sigma(4);
  Rng rng(3);
  for (int t = 0; t < 40; ++t) {
    const World u = static_cast<World>(rng.next_bits(4));
    const World v = static_cast<World>(rng.next_bits(4));
    const auto iv = sigma.interval(u, v);
    ASSERT_TRUE(iv.has_value());
    EXPECT_EQ(*iv, sigma.box(match(u, v)));
    // Smallest subcube containing both: every family member containing both
    // contains the interval.
    for (const FiniteSet& s : sigma.enumerate()) {
      if (s.contains(u) && s.contains(v)) {
        EXPECT_TRUE(iv->subset_of(s));
      }
    }
  }
}

TEST(SubcubeSigma, HasTightIntervals) {
  auto sigma = std::make_shared<SubcubeSigma>(3);
  IntervalOracle oracle(sigma, FiniteSet::universe(8));
  EXPECT_TRUE(oracle.has_tight_intervals());
  EXPECT_TRUE(oracle.beta(FiniteSet(8, {1, 2, 7})).has_value());
}

TEST(SubcubeSigma, OracleMatchesDefinitionOnRandomPairs) {
  auto sigma = std::make_shared<SubcubeSigma>(3);
  IntervalOracle oracle(sigma, FiniteSet::universe(8));
  auto k = SecondLevelKnowledge::product(FiniteSet::universe(8),
                                         sigma->enumerate());
  Rng rng(7);
  for (int t = 0; t < 60; ++t) {
    FiniteSet a = FiniteSet::random(8, rng, 0.5);
    FiniteSet b = FiniteSet::random(8, rng, 0.5);
    EXPECT_EQ(oracle.safe_minimal_intervals(a, b), safe_possibilistic(k, a, b))
        << "A=" << a.to_string() << " B=" << b.to_string();
  }
}

TEST(SubcubeAuditor, ImplicationSafeDirectUnsafe) {
  RecordUniverse u;
  u.add("r1");
  u.add("r2");
  InMemoryDatabase db(u);
  db.insert("r1");
  db.insert("r2");
  AuditLog log;
  log.record("alice", "r1 -> r2", db);
  log.record("mallory", "r1", db);
  Auditor auditor(u, PriorAssumption::kSubcubeKnowledge);
  const AuditReport report = auditor.audit(log, "r1");
  // An agent who already knows r2's value gains nothing about r1 from the
  // implication? Knowing r2=0 plus "r1 -> r2" pins r1 = 0 — but that asserts
  // NOT A, which epistemic privacy does not protect. Knowing r2=1 makes the
  // implication vacuous. So the implication stays safe:
  EXPECT_EQ(report.per_disclosure[0].verdict, Verdict::kSafe);
  EXPECT_EQ(report.per_disclosure[0].method, "subcube-intervals(prepared)");
  EXPECT_TRUE(report.per_disclosure[0].certified);
  // The direct answer pins A for the empty-knowledge agent: unsafe.
  EXPECT_EQ(report.per_disclosure[1].verdict, Verdict::kUnsafe);
}

TEST(SubcubeAuditor, AlwaysDefinite) {
  RecordUniverse u;
  u.add("a");
  u.add("b");
  u.add("c");
  Auditor auditor(u, PriorAssumption::kSubcubeKnowledge);
  Rng rng(11);
  for (int t = 0; t < 40; ++t) {
    WorldSet a = WorldSet::random(3, rng, 0.5);
    WorldSet b = WorldSet::random(3, rng, 0.5);
    const AuditFinding f = auditor.audit_sets(a, b);
    EXPECT_NE(f.verdict, Verdict::kUnknown);
    EXPECT_TRUE(f.certified);
  }
}

TEST(SubcubeAuditor, DiffersFromProductAssumption) {
  // The subcube (possibilistic) and product (probabilistic) assumptions are
  // genuinely different: find a pair where verdicts diverge.
  RecordUniverse u;
  u.add("a");
  u.add("b");
  AuditorOptions opts;
  opts.enable_sos = false;
  Auditor subcube(u, PriorAssumption::kSubcubeKnowledge, opts);
  Auditor product(u, PriorAssumption::kProduct, opts);
  Rng rng(13);
  int diverged = 0;
  for (int t = 0; t < 100; ++t) {
    WorldSet a = WorldSet::random(2, rng, 0.5);
    WorldSet b = WorldSet::random(2, rng, 0.5);
    if (subcube.audit_sets(a, b).verdict != product.audit_sets(a, b).verdict) {
      ++diverged;
    }
  }
  EXPECT_GT(diverged, 0);
}

TEST(SubcubeAuditor, NameString) {
  EXPECT_EQ(to_string(PriorAssumption::kSubcubeKnowledge), "subcube-knowledge");
}

}  // namespace
}  // namespace epi
