// Tests for the epoll serving tier (src/net/): line reassembly when a peer
// delivers one byte per read, write backpressure against a peer whose
// receive buffer is full, the write-buffer cap, idle sweeps, and the
// ServiceServer ordering invariants — per-connection responses in request
// order, per-user disclosure sequences with nothing lost, duplicated or
// reordered — under the same pathological delivery.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/event_loop.h"
#include "net/service_server.h"
#include "service/audit_service.h"
#include "service/protocol.h"
#include "util/status.h"
#include "worlds/world_set.h"

namespace epi {
namespace net {
namespace {

// --- harness ---------------------------------------------------------------

/// Runs an EventLoop on a background thread; the test thread talks to it
/// through the peer ends of socketpairs and through post().
class LoopRunner {
 public:
  LoopRunner(EventLoop::Handler* handler, EventLoop::Options options) {
    const Status s = EventLoop::try_create(handler, options, &loop_);
    EXPECT_TRUE(s.ok()) << s.to_string();
  }

  ~LoopRunner() { stop(); }

  /// Creates a socketpair, adopts one end into the loop (before the loop
  /// thread starts, or via post() after), and returns the test-side fd.
  int adopt_peer(EventLoop::ConnId* conn) {
    int fds[2];
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    if (!running_) {
      EXPECT_TRUE(loop_->adopt(fds[0], conn).ok());
    } else {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      loop_->post([&] {
        EXPECT_TRUE(loop_->adopt(fds[0], conn).ok());
        std::lock_guard<std::mutex> lock(mu);
        done = true;
        cv.notify_one();
      });
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done; });
    }
    return fds[1];
  }

  void start() {
    running_ = true;
    thread_ = std::thread([this] {
      const Status s = loop_->run();
      EXPECT_TRUE(s.ok()) << s.to_string();
    });
  }

  void stop() {
    if (running_) {
      loop_->stop();
      thread_.join();
      running_ = false;
    }
  }

  EventLoop& loop() { return *loop_; }

 private:
  std::unique_ptr<EventLoop> loop_;
  std::thread thread_;
  bool running_ = false;
};

/// Replies "ack:<line>" to every line; records closes.
class EchoHandler : public EventLoop::Handler {
 public:
  explicit EchoHandler(std::size_t ack_repeat = 1) : ack_repeat_(ack_repeat) {}

  void on_line(EventLoop::ConnId conn, std::string line) override {
    for (std::size_t i = 0; i < ack_repeat_; ++i) {
      loop->send_line(conn, "ack:" + line);
    }
  }

  void on_close(EventLoop::ConnId conn, const Status& why) override {
    std::lock_guard<std::mutex> lock(mu);
    closes.emplace_back(conn, why);
    closed.notify_all();
  }

  Status wait_for_close(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu);
    if (!closed.wait_for(lock, timeout, [&] { return !closes.empty(); })) {
      return Status::DeadlineExceeded("no close observed");
    }
    return closes.front().second;
  }

  EventLoop* loop = nullptr;
  std::mutex mu;
  std::condition_variable closed;
  std::vector<std::pair<EventLoop::ConnId, Status>> closes;

 private:
  std::size_t ack_repeat_;
};

/// Blocking-reads lines from the test-side fd until `n` arrive.
std::vector<std::string> read_lines(int fd, std::size_t n) {
  std::vector<std::string> lines;
  service::LineFramer framer;
  char chunk[4096];
  std::string line;
  while (lines.size() < n) {
    while (framer.next(&line)) {
      lines.push_back(line);
      if (lines.size() == n) return lines;
    }
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got <= 0) break;
    EXPECT_TRUE(framer.feed(std::string_view(chunk, got)).ok());
    while (lines.size() < n && framer.next(&line)) lines.push_back(line);
  }
  return lines;
}

// --- EventLoop -------------------------------------------------------------

// A peer that dribbles one byte per send still yields every line exactly
// once, in order: the per-connection LineFramer reassembles across an
// arbitrary number of partial reads.
TEST(EventLoopTest, ReassemblesLinesFromSingleByteReads) {
  EchoHandler handler;
  LoopRunner runner(&handler, EventLoop::Options{});
  handler.loop = &runner.loop();
  EventLoop::ConnId conn = 0;
  const int peer = runner.adopt_peer(&conn);
  runner.start();

  std::vector<std::string> sent;
  std::string wire;
  for (int i = 0; i < 40; ++i) {
    sent.push_back("{\"op\":\"probe\",\"id\":" + std::to_string(i) + "}");
    wire += sent.back() + "\n";
  }
  for (char byte : wire) {
    ASSERT_EQ(1, ::send(peer, &byte, 1, MSG_NOSIGNAL));
  }

  const std::vector<std::string> acks = read_lines(peer, sent.size());
  ASSERT_EQ(sent.size(), acks.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ("ack:" + sent[i], acks[i]) << "line " << i;
  }
  ::close(peer);
}

// A peer that stops reading fills its receive buffer and the loop's send()
// starts short-writing; everything spills into the per-connection write
// buffer and drains — complete and in order — once the peer reads again.
TEST(EventLoopTest, BuffersWritesAgainstFullSendBuffer) {
  // Each request fans out 64 acks, so the responses (~64 * 200 * ~120 B)
  // comfortably exceed the socketpair's buffers while the peer is asleep.
  EchoHandler handler(/*ack_repeat=*/64);
  LoopRunner runner(&handler, EventLoop::Options{});
  handler.loop = &runner.loop();
  EventLoop::ConnId conn = 0;
  const int peer = runner.adopt_peer(&conn);
  runner.start();

  const std::string payload(100, 'x');
  constexpr int kRequests = 200;
  std::string wire;
  for (int i = 0; i < kRequests; ++i) {
    wire += "req" + std::to_string(i) + ":" + payload + "\n";
  }
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(peer, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
  // Only now start reading: the loop has been eating EAGAIN the whole time.
  const std::vector<std::string> acks = read_lines(peer, kRequests * 64u);
  ASSERT_EQ(kRequests * 64u, acks.size());
  std::size_t at = 0;
  for (int i = 0; i < kRequests; ++i) {
    const std::string want =
        "ack:req" + std::to_string(i) + ":" + payload;
    for (int j = 0; j < 64; ++j, ++at) {
      ASSERT_EQ(want, acks[at]) << "request " << i << " ack " << j;
    }
  }
  ::close(peer);
}

// A peer that never reads cannot grow the write buffer without bound: once
// max_write_buffer_bytes is exceeded the connection is destroyed with
// ResourceExhausted.
TEST(EventLoopTest, CapsWriteBufferAgainstStuckPeer) {
  EchoHandler handler(/*ack_repeat=*/256);
  EventLoop::Options options;
  options.max_write_buffer_bytes = 64u << 10;
  LoopRunner runner(&handler, options);
  handler.loop = &runner.loop();
  EventLoop::ConnId conn = 0;
  const int peer = runner.adopt_peer(&conn);
  runner.start();

  // 256 acks x ~1 KiB per request; a few requests overwhelm the cap while
  // the test never reads.
  const std::string request(1000, 'y');
  for (int i = 0; i < 64; ++i) {
    const std::string line = request + "\n";
    if (::send(peer, line.data(), line.size(), MSG_NOSIGNAL) < 0) break;
  }
  const Status why = handler.wait_for_close(std::chrono::seconds(10));
  EXPECT_EQ(why.code(), Status::Code::kResourceExhausted) << why.to_string();
  ::close(peer);
}

// Connections with no traffic either way are swept after idle_timeout.
TEST(EventLoopTest, SweepsIdleConnections) {
  EchoHandler handler;
  EventLoop::Options options;
  options.idle_timeout = std::chrono::milliseconds(100);
  LoopRunner runner(&handler, options);
  handler.loop = &runner.loop();
  EventLoop::ConnId conn = 0;
  const int peer = runner.adopt_peer(&conn);
  runner.start();

  const Status why = handler.wait_for_close(std::chrono::seconds(10));
  EXPECT_EQ(why.code(), Status::Code::kDeadlineExceeded) << why.to_string();
  char byte;
  EXPECT_EQ(0, ::read(peer, &byte, 1));  // loop closed its end
  ::close(peer);
}

// --- ServiceServer ---------------------------------------------------------

RecordUniverse hospital_universe() {
  RecordUniverse u;
  u.add("bob_hiv");
  u.add("bob_transfusion");
  u.add("bob_hepatitis");
  return u;
}

std::unique_ptr<service::AuditService> make_service() {
  service::ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 64;
  options.cache_capacity = 64;
  options.cache_shards = 4;
  std::unique_ptr<service::AuditService> service;
  const Status s = service::AuditService::try_create(
      hospital_universe(), /*initial_state=*/0b011, "bob_hiv",
      PriorAssumption::kProduct, std::move(options), &service);
  EXPECT_TRUE(s.ok()) << s.to_string();
  return service;
}

// Pipelines interleaved audits for several users over one connection,
// delivered one byte at a time, and checks the server's two ordering
// invariants: responses come back in request order (ids 1..n), and each
// user's disclosure sequence is 1..k with no gap, duplicate or reorder.
TEST(ServiceServerTest, PipelinedAuditsKeepPerUserSequences) {
  std::unique_ptr<service::AuditService> service = make_service();
  std::unique_ptr<ServiceServer> server;
  ASSERT_TRUE(
      ServiceServer::try_create(service.get(), EventLoop::Options{}, &server)
          .ok());

  EventLoop::ConnId conn = 0;
  int peer = -1;
  {
    int fds[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    ASSERT_TRUE(server->loop().adopt(fds[0], &conn).ok());
    peer = fds[1];
  }
  std::thread loop_thread([&] { EXPECT_TRUE(server->run().ok()); });

  const std::vector<std::string> users = {"alice", "bob", "cindy"};
  const std::vector<std::string> queries = {
      "bob_hiv", "bob_hiv -> bob_transfusion", "bob_transfusion",
      "atmost(0, bob_hepatitis)"};
  std::string wire;
  std::uint64_t id = 0;
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (const std::string& user : users) {
      service::WireRequest request;
      request.op = service::Op::kAudit;
      request.id = ++id;
      request.user = user;
      request.query = queries[round % queries.size()];
      wire += serialize_request(request) + "\n";
    }
  }
  for (char byte : wire) {
    ASSERT_EQ(1, ::send(peer, &byte, 1, MSG_NOSIGNAL));
  }

  const std::vector<std::string> lines = read_lines(peer, id);
  ASSERT_EQ(id, lines.size());
  std::map<std::string, std::uint64_t> next_sequence;
  std::uint64_t expected_id = 0;
  for (const std::string& line : lines) {
    service::WireResponse response;
    ASSERT_TRUE(parse_response(line, &response).ok()) << line;
    ASSERT_TRUE(response.ok) << line;
    // Per-connection order: ids echo back exactly as sent.
    EXPECT_EQ(++expected_id, response.id);
    // Per-user order: the service's own sequence counter must tick 1..k.
    const std::string user = users[(response.id - 1) % users.size()];
    EXPECT_EQ(++next_sequence[user], response.sequence)
        << user << " at id " << response.id;
  }
  for (const std::string& user : users) {
    EXPECT_EQ(static_cast<std::uint64_t>(kRounds), next_sequence[user]);
  }

  // Wire shutdown: ok response, then the server drains and run() returns.
  service::WireRequest bye;
  bye.op = service::Op::kShutdown;
  bye.id = ++id;
  const std::string bye_wire = serialize_request(bye) + "\n";
  ASSERT_EQ(static_cast<ssize_t>(bye_wire.size()),
            ::send(peer, bye_wire.data(), bye_wire.size(), MSG_NOSIGNAL));
  const std::vector<std::string> tail = read_lines(peer, 1);
  ASSERT_EQ(1u, tail.size());
  service::WireResponse response;
  ASSERT_TRUE(parse_response(tail[0], &response).ok());
  EXPECT_TRUE(response.ok);
  loop_thread.join();
  ::close(peer);
  service->shutdown();
}

}  // namespace
}  // namespace net
}  // namespace epi
