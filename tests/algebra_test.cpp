#include <gtest/gtest.h>

#include "algebra/monomial.h"
#include "algebra/polynomial.h"
#include "algebra/safety_polynomial.h"
#include "probabilistic/modularity.h"
#include "probabilistic/product.h"
#include "util/rng.h"

namespace epi {
namespace {

TEST(Monomial, BasicsAndEval) {
  Monomial one(3);
  EXPECT_EQ(one.degree(), 0u);
  EXPECT_EQ(one.to_string(), "1");
  EXPECT_DOUBLE_EQ(one.eval({1, 2, 3}), 1.0);
  Monomial m = Monomial::variable(3, 0, 2) * Monomial::variable(3, 2);
  EXPECT_EQ(m.degree(), 3u);
  EXPECT_EQ(m.to_string(), "x0^2*x2");
  EXPECT_DOUBLE_EQ(m.eval({2, 5, 3}), 12.0);
  EXPECT_THROW(Monomial::variable(3, 3), std::out_of_range);
  EXPECT_THROW(m.eval({1.0}), std::invalid_argument);
}

TEST(Monomial, EnumerationCount) {
  // C(nvars + d, d) monomials up to degree d.
  EXPECT_EQ(monomials_up_to_degree(3, 2).size(), 10u);
  EXPECT_EQ(monomials_up_to_degree(2, 4).size(), 15u);
  EXPECT_EQ(monomials_up_to_degree(4, 0).size(), 1u);
}

TEST(Polynomial, ArithmeticAndEval) {
  const std::size_t s = 2;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial y = Polynomial::variable(s, 1);
  Polynomial f = x * x + y * 2.0 - Polynomial::constant(s, 3.0);
  EXPECT_DOUBLE_EQ(f.eval({2, 1}), 4 + 2 - 3);
  EXPECT_EQ(f.degree(), 2u);
  Polynomial g = f - f;
  EXPECT_TRUE(g.is_zero());
  Polynomial h = (x + y).pow(2);
  EXPECT_DOUBLE_EQ(h.coefficient(Monomial::variable(s, 0) * Monomial::variable(s, 1)), 2.0);
  EXPECT_DOUBLE_EQ(h.eval({1, 2}), 9.0);
}

TEST(Polynomial, TermCancellation) {
  const std::size_t s = 1;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial f = x + x * (-1.0);
  EXPECT_TRUE(f.is_zero());
  EXPECT_TRUE(f.terms().empty());
}

TEST(Polynomial, Derivative) {
  const std::size_t s = 2;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial y = Polynomial::variable(s, 1);
  Polynomial f = x.pow(3) * y + y * y;
  Polynomial fx = f.derivative(0);  // 3 x^2 y
  Polynomial fy = f.derivative(1);  // x^3 + 2y
  EXPECT_DOUBLE_EQ(fx.eval({2, 5}), 60.0);
  EXPECT_DOUBLE_EQ(fy.eval({2, 5}), 18.0);
  EXPECT_THROW(f.derivative(2), std::out_of_range);
}

TEST(Polynomial, ToStringReadable) {
  const std::size_t s = 2;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial f = x * x * 2.0 - Polynomial::constant(s, 1.0);
  EXPECT_EQ(f.to_string(), "-1 + 2*x0^2");
  EXPECT_EQ(Polynomial(2).to_string(), "0");
}

TEST(Polynomial, MaxCoeffDifferenceAndPrune) {
  const std::size_t s = 1;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial f = x * 2.0;
  Polynomial g = x * 2.5 + Polynomial::constant(s, 1e-12);
  EXPECT_NEAR(f.max_coeff_difference(g), 0.5, 1e-9);
  EXPECT_EQ(g.pruned(1e-9).terms().size(), 1u);
}

TEST(Motzkin, NonnegativeOnSamples) {
  Polynomial m = motzkin_polynomial();
  EXPECT_EQ(m.degree(), 6u);
  Rng rng(9);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<double> x(3);
    for (double& v : x) v = 4.0 * rng.next_double() - 2.0;
    EXPECT_GE(m.eval(x), -1e-9);
  }
  // Known zero at |x|=|y|=|z|=1.
  EXPECT_NEAR(m.eval({1, 1, 1}), 0.0, 1e-12);
}

TEST(SafetyPolynomial, EventProbabilityMatchesProductDistribution) {
  Rng rng(11);
  const unsigned n = 4;
  for (int trial = 0; trial < 20; ++trial) {
    WorldSet x = WorldSet::random(n, rng, 0.5);
    Polynomial poly = event_probability_in_params(x);
    auto p = ProductDistribution::random(n, rng);
    EXPECT_NEAR(poly.eval(p.params()), p.prob(x), 1e-10);
  }
}

TEST(SafetyPolynomial, MarginMatchesGap) {
  Rng rng(13);
  const unsigned n = 4;
  for (int trial = 0; trial < 20; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    Polynomial margin = product_safety_margin(a, b);
    auto p = ProductDistribution::random(n, rng);
    EXPECT_NEAR(margin.eval(p.params()), -p.safety_gap(a, b), 1e-10);
  }
}

TEST(SafetyPolynomial, FactoredFormIsIdentical) {
  // P[A]P[B] - P[AB] == P[A'B]P[AB'] - P[AB]P[A'B'] as polynomials —
  // the identity behind the cancellation criterion (Prop. 5.9).
  Rng rng(17);
  const unsigned n = 3;
  for (int trial = 0; trial < 20; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    Polynomial direct = product_safety_margin(a, b);
    Polynomial factored = product_safety_margin_factored(a, b);
    EXPECT_LT(direct.max_coeff_difference(factored), 1e-9)
        << "A=" << a.to_string() << " B=" << b.to_string();
  }
}

TEST(SafetyPolynomial, WeightSpaceMarginMatchesDistribution) {
  Rng rng(19);
  const unsigned n = 3;
  for (int trial = 0; trial < 20; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    Polynomial margin = weight_safety_margin(a, b);
    Distribution d = Distribution::random(n, rng);
    EXPECT_NEAR(margin.eval(d.weights()), -d.safety_gap(a, b), 1e-10);
  }
}

TEST(SafetyPolynomial, SupermodularConstraintsSignMatchesChecker) {
  Rng rng(23);
  const unsigned n = 3;
  const auto constraints = supermodularity_constraints_in_weights(n);
  // 9 incomparable pairs on {0,1}^3.
  EXPECT_EQ(constraints.size(), 9u);
  for (int trial = 0; trial < 20; ++trial) {
    Distribution d = random_log_supermodular(n, rng);
    for (const Polynomial& alpha : constraints) {
      EXPECT_GE(alpha.eval(d.weights()), -1e-9);
    }
  }
}

}  // namespace
}  // namespace epi
