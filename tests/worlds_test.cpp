#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>

#include "worlds/finite_set.h"
#include "worlds/match_vector.h"
#include "worlds/monotone.h"
#include "worlds/world.h"
#include "worlds/world_set.h"

namespace epi {
namespace {

TEST(World, BitAccess) {
  World w = world_from_string("0110");
  EXPECT_FALSE(world_bit(w, 0));
  EXPECT_TRUE(world_bit(w, 1));
  EXPECT_TRUE(world_bit(w, 2));
  EXPECT_FALSE(world_bit(w, 3));
  EXPECT_EQ(world_to_string(w, 4), "0110");
}

TEST(World, WithAndFlip) {
  World w = 0;
  w = world_with_bit(w, 2, true);
  EXPECT_EQ(world_to_string(w, 3), "001");
  w = world_flip_bit(w, 0);
  EXPECT_EQ(world_to_string(w, 3), "101");
  w = world_with_bit(w, 2, false);
  EXPECT_EQ(world_to_string(w, 3), "100");
}

TEST(World, LatticeOps) {
  World a = world_from_string("0110");
  World b = world_from_string("0011");
  EXPECT_EQ(world_to_string(world_meet(a, b), 4), "0010");
  EXPECT_EQ(world_to_string(world_join(a, b), 4), "0111");
  EXPECT_TRUE(world_leq(world_meet(a, b), a));
  EXPECT_TRUE(world_leq(a, world_join(a, b)));
  EXPECT_FALSE(world_leq(a, b));
}

TEST(World, Weight) {
  EXPECT_EQ(world_weight(world_from_string("0110")), 2u);
  EXPECT_EQ(world_weight(0), 0u);
}

TEST(World, FromStringRejectsGarbage) {
  EXPECT_THROW(world_from_string("01x"), std::invalid_argument);
}

TEST(WorldSet, EmptyAndUniverse) {
  WorldSet e(3);
  EXPECT_TRUE(e.is_empty());
  EXPECT_EQ(e.count(), 0u);
  WorldSet u = WorldSet::universe(3);
  EXPECT_TRUE(u.is_universe());
  EXPECT_EQ(u.count(), 8u);
}

TEST(WorldSet, UniverseLargerThanOneWord) {
  WorldSet u = WorldSet::universe(8);
  EXPECT_EQ(u.count(), 256u);
  EXPECT_TRUE(u.contains(255));
}

TEST(WorldSet, InsertEraseContains) {
  WorldSet s(3);
  s.insert(5);
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
  s.erase(5);
  EXPECT_FALSE(s.contains(5));
  EXPECT_THROW(s.insert(8), std::out_of_range);
}

TEST(WorldSet, NOutOfRangeRejected) {
  EXPECT_THROW(WorldSet(0), std::invalid_argument);
  EXPECT_THROW(WorldSet(kMaxSymbolicCoordinates + 1), std::invalid_argument);
  // Past the dense cap a forced-dense set is rejected; kAuto switches to the
  // symbolic backend instead.
  EXPECT_THROW(WorldSet(kMaxCoordinates + 1, SetBackend::kDense),
               std::invalid_argument);
  EXPECT_EQ(WorldSet(kMaxCoordinates + 1).backend(), SetBackend::kSymbolic);
  EXPECT_EQ(WorldSet(kMaxCoordinates).backend(), SetBackend::kDense);
}

TEST(WorldSet, SetAlgebra) {
  WorldSet a(3, {0, 1, 2});
  WorldSet b(3, {2, 3});
  EXPECT_EQ((a & b), WorldSet(3, {2}));
  EXPECT_EQ((a | b), WorldSet(3, {0, 1, 2, 3}));
  EXPECT_EQ((a - b), WorldSet(3, {0, 1}));
  EXPECT_EQ((a ^ b), WorldSet(3, {0, 1, 3}));
  EXPECT_EQ((~a), WorldSet(3, {3, 4, 5, 6, 7}));
}

TEST(WorldSet, MismatchedNThrows) {
  WorldSet a(3), b(4);
  EXPECT_THROW(a & b, std::invalid_argument);
}

TEST(WorldSet, SubsetAndDisjoint) {
  WorldSet a(3, {1, 2});
  WorldSet b(3, {1, 2, 3});
  WorldSet c(3, {4, 5});
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.disjoint_with(c));
  EXPECT_FALSE(a.disjoint_with(b));
}

TEST(WorldSet, MinWorld) {
  WorldSet s(4, {9, 3, 12});
  EXPECT_EQ(s.min_world(), 3u);
  EXPECT_THROW(WorldSet(4).min_world(), std::logic_error);
}

TEST(WorldSet, ToVectorSorted) {
  WorldSet s(4, {9, 3, 12});
  std::vector<World> v = s.to_vector();
  EXPECT_EQ(v, (std::vector<World>{3, 9, 12}));
}

TEST(WorldSet, FromStrings) {
  WorldSet s = WorldSet::from_strings(3, {"011", "100"});
  EXPECT_TRUE(s.contains(world_from_string("011")));
  EXPECT_TRUE(s.contains(world_from_string("100")));
  EXPECT_EQ(s.count(), 2u);
  EXPECT_THROW(WorldSet::from_strings(3, {"01"}), std::invalid_argument);
}

TEST(WorldSet, XorTransform) {
  WorldSet s(3, {0b000, 0b011});
  WorldSet t = s.xor_with(0b101);
  EXPECT_EQ(t, WorldSet(3, {0b101, 0b110}));
  // xor is an involution
  EXPECT_EQ(t.xor_with(0b101), s);
}

TEST(WorldSet, FlipCoordinate) {
  WorldSet s(3, {0b000});
  EXPECT_EQ(s.flip_coordinate(1), WorldSet(3, {0b010}));
}

TEST(WorldSet, SetwiseMeetJoin) {
  WorldSet a(3, {0b110});
  WorldSet b(3, {0b011});
  EXPECT_EQ(a.setwise_meet(b), WorldSet(3, {0b010}));
  EXPECT_EQ(a.setwise_join(b), WorldSet(3, {0b111}));
}

TEST(WorldSet, RandomRespectsDensityRoughly) {
  Rng rng(5);
  WorldSet s = WorldSet::random(12, rng, 0.3);
  const double frac = static_cast<double>(s.count()) / s.omega_size();
  EXPECT_NEAR(frac, 0.3, 0.05);
}

TEST(WorldSet, ToStringRoundTrip) {
  WorldSet s(3, {0b110, 0b001});
  EXPECT_EQ(s.to_string(), "{100,011}");  // world 1 = "100", world 6 = "011"
}

TEST(WorldSetHash, AllSubsetsOfSmallUniverseDistinct) {
  // Exhaustive: every one of the 256 subsets of {0,1}^3 hashes differently.
  // The verdict cache keys entries by (hash(A), hash(B), prior), so any
  // equal-hash pair of distinct sets is a potential cross-pair collision.
  std::map<std::size_t, WorldSet> seen;
  for (World mask = 0; mask < 256; ++mask) {
    WorldSet s(3);
    for (unsigned w = 0; w < 8; ++w) {
      if ((mask >> w) & 1u) s.insert(w);
    }
    auto [it, inserted] = seen.emplace(s.hash(), s);
    EXPECT_TRUE(inserted) << "collision: " << s.to_string() << " vs "
                          << it->second.to_string();
  }
}

TEST(WorldSetHash, NoCollisionsAcrossRandomMultiWordSets) {
  // 4000 random sets over {0,1}^10 (16 words each): any collision among
  // distinct sets fails. Expected collisions for a uniform 64-bit hash:
  // ~4000^2 / 2^65 ≈ 4e-13.
  Rng rng(7);
  std::map<std::size_t, WorldSet> seen;
  for (int i = 0; i < 4000; ++i) {
    WorldSet s = WorldSet::random(10, rng, 0.5);
    auto [it, inserted] = seen.emplace(s.hash(), s);
    if (!inserted) {
      EXPECT_EQ(it->second, s) << "distinct sets share hash " << s.hash();
    }
  }
}

TEST(WorldSetHash, SingleWorldFlipAvalanches) {
  // Regression for the pre-avalanche FNV-1a scheme: toggling one world must
  // flip roughly half of the 64 output bits (we accept [16, 48] on average),
  // not just a low-bit cluster.
  Rng rng(11);
  double total_flipped = 0;
  int samples = 0;
  for (int i = 0; i < 200; ++i) {
    WorldSet s = WorldSet::random(8, rng, 0.5);
    const std::size_t before = s.hash();
    const World w = static_cast<World>(i % s.omega_size());
    if (s.contains(w)) {
      s.erase(w);
    } else {
      s.insert(w);
    }
    const std::uint64_t diff = static_cast<std::uint64_t>(before ^ s.hash());
    total_flipped += static_cast<double>(__builtin_popcountll(diff));
    ++samples;
    EXPECT_NE(diff, 0u);
  }
  const double mean = total_flipped / samples;
  EXPECT_GE(mean, 16.0);
  EXPECT_LE(mean, 48.0);
}

TEST(WorldSetHash, DependsOnWordPosition) {
  // The same word pattern in different word positions must hash differently:
  // {0} vs {64} vs {128} over a >2-word universe.
  WorldSet a(8), b(8), c(8);
  a.insert(0);
  b.insert(64);
  c.insert(128);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_NE(b.hash(), c.hash());
}

TEST(MatchVector, MatchPaperExample) {
  // Paper (Def. 5.8): pair (01011, 01101) maps to 01**1.
  World u = world_from_string("01011");
  World v = world_from_string("01101");
  MatchVector w = match(u, v);
  EXPECT_EQ(w.to_string(5), "01**1");
  EXPECT_EQ(w.star_count(), 2u);
}

TEST(MatchVector, FromStringRoundTrip) {
  MatchVector w = MatchVector::from_string("1*0*");
  EXPECT_EQ(w.to_string(4), "1*0*");
  EXPECT_THROW(MatchVector::from_string("01a"), std::invalid_argument);
}

TEST(MatchVector, Refines) {
  MatchVector w = MatchVector::from_string("01**1");
  EXPECT_TRUE(refines(world_from_string("01001"), w));
  EXPECT_TRUE(refines(world_from_string("01111"), w));
  EXPECT_FALSE(refines(world_from_string("11001"), w));
}

TEST(MatchVector, KeyDistinguishes) {
  EXPECT_NE(MatchVector::from_string("0*").key(), MatchVector::from_string("00").key());
  EXPECT_NE(MatchVector::from_string("01").key(), MatchVector::from_string("10").key());
}

TEST(TernaryTable, CodeRoundTrip) {
  TernaryTable t(4);
  for (std::size_t code = 0; code < t.size(); ++code) {
    EXPECT_EQ(t.code_of(t.vector_of(code)), code);
  }
}

TEST(TernaryTable, BoxCountsSmall) {
  WorldSet s = WorldSet::from_strings(2, {"00", "01", "11"});
  TernaryTable t = TernaryTable::box_counts(s);
  EXPECT_EQ(t.at(t.code_of(MatchVector::from_string("**"))), 3);
  EXPECT_EQ(t.at(t.code_of(MatchVector::from_string("0*"))), 2);
  EXPECT_EQ(t.at(t.code_of(MatchVector::from_string("*1"))), 2);
  EXPECT_EQ(t.at(t.code_of(MatchVector::from_string("10"))), 0);
  EXPECT_EQ(t.at(t.code_of(MatchVector::from_string("11"))), 1);
}

TEST(TernaryTable, BoxCountsAgreeWithDirectEnumeration) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    WorldSet s = WorldSet::random(5, rng, 0.4);
    TernaryTable t = TernaryTable::box_counts(s);
    for (std::size_t code = 0; code < t.size(); ++code) {
      const MatchVector w = t.vector_of(code);
      std::int64_t direct = 0;
      s.visit([&](World v) { direct += refines(v, w); });
      ASSERT_EQ(t.at(code), direct) << "w=" << w.to_string(5);
    }
  }
}

TEST(CircCounts, PaperRemark512Counts) {
  // Remark 5.12: A = {011,100,110,111}, B = {010,101,110,111}.
  // |A'B x AB' ∩ Circ(***)| = 0 and |AB x A'B' ∩ Circ(***)| = 2.
  const unsigned n = 3;
  WorldSet a = WorldSet::from_strings(n, {"011", "100", "110", "111"});
  WorldSet b = WorldSet::from_strings(n, {"010", "101", "110", "111"});
  WorldSet ab = a & b;
  WorldSet a_b = b - a;   // A'B
  WorldSet ab_ = a - b;   // AB'
  WorldSet a_b_ = ~(a | b);
  auto lhs = circ_counts(a_b, ab_);
  auto rhs = circ_counts(ab, a_b_);
  const auto star3 = MatchVector::from_string("***").key();
  EXPECT_EQ(lhs.count(star3) ? lhs.at(star3) : 0, 0);
  EXPECT_EQ(rhs.at(star3), 2);
}

TEST(CircCounts, TotalsEqualPairCount) {
  Rng rng(3);
  WorldSet x = WorldSet::random(4, rng, 0.5);
  WorldSet y = WorldSet::random(4, rng, 0.5);
  auto counts = circ_counts(x, y);
  std::int64_t total = 0;
  for (const auto& [k, v] : counts) total += v;
  EXPECT_EQ(total, static_cast<std::int64_t>(x.count() * y.count()));
}

TEST(Monotone, UpsetDownset) {
  // {11, 01, 10} is an up-set of {0,1}^2 missing only 00? No: up-set must
  // contain everything above each element; {01,10,11} is an up-set.
  WorldSet up = WorldSet::from_strings(2, {"01", "10", "11"});
  EXPECT_TRUE(is_upset(up));
  EXPECT_FALSE(is_downset(up));
  WorldSet down = WorldSet::from_strings(2, {"00", "10"});
  EXPECT_TRUE(is_downset(down));
  EXPECT_FALSE(is_upset(down));
  EXPECT_TRUE(is_upset(WorldSet::universe(2)));
  EXPECT_TRUE(is_downset(WorldSet::universe(2)));
  EXPECT_TRUE(is_upset(WorldSet(2)));
  EXPECT_TRUE(is_downset(WorldSet(2)));
}

TEST(Monotone, Closures) {
  WorldSet s(3, {world_from_string("010")});
  WorldSet up = up_closure(s);
  EXPECT_EQ(up, WorldSet::from_strings(3, {"010", "110", "011", "111"}));
  EXPECT_TRUE(is_upset(up));
  WorldSet down = down_closure(s);
  EXPECT_EQ(down, WorldSet::from_strings(3, {"010", "000"}));
  EXPECT_TRUE(is_downset(down));
}

TEST(Monotone, ClosureIsIdempotentAndMinimal) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    WorldSet s = WorldSet::random(5, rng, 0.2);
    WorldSet up = up_closure(s);
    EXPECT_TRUE(is_upset(up));
    EXPECT_TRUE(s.subset_of(up));
    EXPECT_EQ(up_closure(up), up);
    // Minimality: every element of the closure dominates some element of s.
    up.visit([&](World w) {
      bool dominated = false;
      s.visit([&](World v) { dominated |= world_leq(v, w); });
      EXPECT_TRUE(dominated);
    });
  }
}

TEST(Monotone, CriticalCoordinates) {
  // A = "coordinate 1 is set" depends only on coordinate 1.
  WorldSet a(3);
  for (World w = 0; w < 8; ++w) {
    if (world_bit(w, 1)) a.insert(w);
  }
  EXPECT_EQ(critical_coordinates(a), World{1} << 1);
  EXPECT_EQ(critical_coordinates(WorldSet::universe(3)), 0u);
  EXPECT_EQ(critical_coordinates(WorldSet(3)), 0u);
}

TEST(Monotone, CoordinateDirections) {
  WorldSet up = WorldSet::from_strings(2, {"01", "10", "11"});
  auto dirs = coordinate_directions(up);
  EXPECT_TRUE(dirs[0].increasing);
  EXPECT_FALSE(dirs[0].decreasing);
  EXPECT_TRUE(dirs[1].increasing);
  // Constant coordinate:
  WorldSet a(2, {0b00, 0b10});  // membership independent of bit 1...
  // a = {00, 01} in string order: contains worlds 0 and 2.
  auto d0 = coordinate_direction(a, 0);
  EXPECT_TRUE(d0.decreasing);
  EXPECT_FALSE(d0.increasing);
  auto d1 = coordinate_direction(a, 1);
  EXPECT_TRUE(d1.constant());
}

// FiniteSet::hash goes through the same dense_bits kernel as WorldSet::hash;
// the four suites below mirror the WorldSetHash coverage so both wrappers
// carry the same collision guarantees.

TEST(FiniteSetHash, AllSubsetsOfSmallUniverseDistinct) {
  // Exhaustive: every one of the 256 subsets of an 8-element universe hashes
  // differently.
  std::map<std::size_t, FiniteSet> seen;
  for (unsigned mask = 0; mask < 256; ++mask) {
    FiniteSet s(8);
    for (std::size_t e = 0; e < 8; ++e) {
      if ((mask >> e) & 1u) s.insert(e);
    }
    auto [it, inserted] = seen.emplace(s.hash(), s);
    EXPECT_TRUE(inserted) << "collision: " << s.to_string() << " vs "
                          << it->second.to_string();
  }
}

TEST(FiniteSetHash, NoCollisionsAcrossRandomMultiWordSets) {
  // 4000 random sets over a 1024-element universe (16 words each).
  Rng rng(7);
  std::map<std::size_t, FiniteSet> seen;
  for (int i = 0; i < 4000; ++i) {
    FiniteSet s = FiniteSet::random(1024, rng, 0.5);
    auto [it, inserted] = seen.emplace(s.hash(), s);
    if (!inserted) {
      EXPECT_EQ(it->second, s) << "distinct sets share hash " << s.hash();
    }
  }
}

TEST(FiniteSetHash, SingleElementFlipAvalanches) {
  // Toggling one element must flip roughly half of the 64 output bits
  // ([16, 48] on average), not just a low-bit cluster.
  Rng rng(11);
  double total_flipped = 0;
  int samples = 0;
  for (int i = 0; i < 200; ++i) {
    FiniteSet s = FiniteSet::random(256, rng, 0.5);
    const std::size_t before = s.hash();
    const std::size_t e = static_cast<std::size_t>(i) % s.universe_size();
    if (s.contains(e)) {
      s.erase(e);
    } else {
      s.insert(e);
    }
    const std::uint64_t diff = static_cast<std::uint64_t>(before ^ s.hash());
    total_flipped += static_cast<double>(__builtin_popcountll(diff));
    ++samples;
    EXPECT_NE(diff, 0u);
  }
  const double mean = total_flipped / samples;
  EXPECT_GE(mean, 16.0);
  EXPECT_LE(mean, 48.0);
}

TEST(FiniteSetHash, DependsOnWordPositionAndUniverse) {
  // The same word pattern in different word positions must hash differently,
  // and the universe size salts the seed: {0} over m=256 differs from {0}
  // over m=257.
  FiniteSet a(256), b(256), c(256);
  a.insert(0);
  b.insert(64);
  c.insert(128);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_NE(b.hash(), c.hash());
  FiniteSet d(257);
  d.insert(0);
  EXPECT_NE(a.hash(), d.hash());
}

TEST(FiniteSetHash, FunctorMatchesMethod) {
  FiniteSet s(64, {3, 17, 42});
  EXPECT_EQ(FiniteSetHash{}(s), s.hash());
  WorldSet w(6, {3, 17, 42});
  EXPECT_EQ(WorldSetHash{}(w), w.hash());
}

// --- Fused predicates vs their compositional definitions --------------------

TEST(FusedPredicates, WorldSetAgreesWithComposition) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    const WorldSet s = WorldSet::random(7, rng);
    const WorldSet b = WorldSet::random(7, rng);
    const WorldSet a = WorldSet::random(7, rng, 0.7);
    EXPECT_EQ(intersection_subset_of(s, b, a), (s & b).subset_of(a));
    EXPECT_EQ(intersection_count(s, b), (s & b).count());
    EXPECT_EQ(union_is_universe(s, b), (s | b).is_universe());
    std::vector<World> fused, materialized;
    visit_intersection(s, b, [&](World w) { fused.push_back(w); });
    (s & b).visit([&](World w) { materialized.push_back(w); });
    EXPECT_EQ(fused, materialized);
  }
}

TEST(FusedPredicates, FiniteSetAgreesWithComposition) {
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    const FiniteSet s = FiniteSet::random(100, rng);
    const FiniteSet b = FiniteSet::random(100, rng);
    const FiniteSet a = FiniteSet::random(100, rng, 0.7);
    EXPECT_EQ(intersection_subset_of(s, b, a), (s & b).subset_of(a));
    EXPECT_EQ(intersection_count(s, b), (s & b).count());
    EXPECT_EQ(intersection_disjoint(s, b, a), ((s & b) & a).is_empty());
    EXPECT_EQ(union_is_universe(s, b), (s | b).is_universe());
  }
}

TEST(FusedPredicates, MismatchedUniversesThrow) {
  const WorldSet a(3), b(4);
  EXPECT_THROW(intersection_subset_of(a, a, b), std::invalid_argument);
  EXPECT_THROW(intersection_count(a, b), std::invalid_argument);
  EXPECT_THROW(union_is_universe(a, b), std::invalid_argument);
  const FiniteSet f(8), g(9);
  EXPECT_THROW(intersection_subset_of(f, f, g), std::invalid_argument);
  EXPECT_THROW(intersection_disjoint(f, g, f), std::invalid_argument);
}

TEST(FusedPredicates, WeightSumsBitIdenticalToPerWorldLoop) {
  Rng rng(31);
  const WorldSet a = WorldSet::random(8, rng);
  const WorldSet b = WorldSet::random(8, rng);
  std::vector<double> weights(a.omega_size());
  for (double& w : weights) w = rng.next_double();
  double direct = 0.0;
  a.visit([&](World w) { direct += weights[w]; });
  EXPECT_EQ(masked_weight_sum(a, weights.data()), direct);
  double inter = 0.0;
  (a & b).visit([&](World w) { inter += weights[w]; });
  EXPECT_EQ(intersection_weight_sum(a, b, weights.data()), inter);
}

// --- Setwise meet/join early exits (Thm. 5.3) -------------------------------

TEST(WorldSet, SetwiseMeetJoinEmptyOperand) {
  const WorldSet empty(3);
  const WorldSet b(3, {0b011, 0b101});
  EXPECT_TRUE(empty.setwise_meet(b).is_empty());
  EXPECT_TRUE(b.setwise_meet(empty).is_empty());
  EXPECT_TRUE(empty.setwise_join(b).is_empty());
  EXPECT_TRUE(b.setwise_join(empty).is_empty());
}

TEST(WorldSet, SetwiseMeetJoinUniverseOperandMatchesPairwise) {
  // The universe early exit (down/up closure) must agree with the pairwise
  // definition {u op v}. Compute the reference by brute force.
  Rng rng(37);
  for (int i = 0; i < 20; ++i) {
    const WorldSet b = WorldSet::random(4, rng, 0.4);
    if (b.is_empty()) continue;
    const WorldSet omega = WorldSet::universe(4);
    WorldSet meet_ref(4), join_ref(4);
    omega.visit([&](World u) {
      b.visit([&](World v) {
        meet_ref.insert(u & v);
        join_ref.insert(u | v);
      });
    });
    EXPECT_EQ(omega.setwise_meet(b), meet_ref);
    EXPECT_EQ(b.setwise_meet(omega), meet_ref);
    EXPECT_EQ(omega.setwise_join(b), join_ref);
    EXPECT_EQ(b.setwise_join(omega), join_ref);
  }
}

}  // namespace
}  // namespace epi
