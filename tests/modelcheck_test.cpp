// Tier-2 differential model checking (src/testing/): unit tests for the
// brute-force oracles, the seeded generators and the shrinker, a regression
// suite for bugs the harness has already flushed out, and a reduced-budget
// run of the full differential harness (the 10,000-scenario budget runs in
// CI via epi_modelcheck; see docs/testing.md for reproducing failures).
#include <gtest/gtest.h>

#include "criteria/unconditional.h"
#include "db/parser.h"
#include "possibilistic/safe.h"
#include "possibilistic/sigma_family.h"
#include "probabilistic/exact.h"
#include "testing/generators.h"
#include "testing/modelcheck.h"
#include "testing/oracle.h"

namespace epi {
namespace testing {
namespace {

// --- Oracle unit tests ------------------------------------------------------

TEST(Oracle, PossibilisticMatchesTheorem311Corners) {
  // A ∩ B = {}: safe.
  EXPECT_TRUE(oracle_possibilistic_full(FiniteSet(3, {0}), FiniteSet(3, {1}))
                  .safe);
  // A ∪ B = Omega: safe.
  EXPECT_TRUE(
      oracle_possibilistic_full(FiniteSet(3, {0, 1}), FiniteSet(3, {1, 2}))
          .safe);
  // Overlap without cover: unsafe, with a consistent violation witness.
  const PossOracleResult r =
      oracle_possibilistic_full(FiniteSet(3, {0, 1}), FiniteSet(3, {1}));
  ASSERT_FALSE(r.safe);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_TRUE(r.violation->knowledge.contains(r.violation->world));
}

TEST(Oracle, UnrestrictedProbWitnessRegions) {
  const WorldSet a(2, {0, 1});
  const WorldSet b(2, {1, 2});
  const UnrestrictedProbOracleResult r = oracle_unrestricted_prob(a, b);
  ASSERT_FALSE(r.safe);
  ASSERT_TRUE(r.inside && r.outside);
  EXPECT_TRUE(a.contains(*r.inside) && b.contains(*r.inside));
  EXPECT_TRUE(!a.contains(*r.outside) && !b.contains(*r.outside));
  // The two-point uniform prior on those worlds attains gap 1/4.
  const ExactDistribution two_point =
      ExactDistribution::uniform_on(WorldSet(2, {*r.inside, *r.outside}));
  EXPECT_EQ(two_point.safety_gap(a, b), Rational(1, 4));
}

TEST(Oracle, ExactGapAgreesWithExactDistribution) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const unsigned n = 1 + static_cast<unsigned>(rng.next_below(4));
    const ExactDistribution p = random_exact_distribution(rng, n);
    const WorldSet a = random_world_set(rng, n);
    const WorldSet b = random_world_set(rng, n);
    EXPECT_EQ(oracle_exact_gap(p, a, b), p.safety_gap(a, b));
  }
}

// --- Generator determinism and palette coverage -----------------------------

TEST(Generators, SameSeedSameScenario) {
  Rng r1(42), r2(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(random_finite_set(r1, 8), random_finite_set(r2, 8));
    EXPECT_EQ(random_world_set(r1, 4), random_world_set(r2, 4));
    EXPECT_EQ(random_query_text(r1, {"a", "b"}, 3),
              random_query_text(r2, {"a", "b"}, 3));
  }
}

TEST(Generators, ClosedFamilyIsIntersectionClosed) {
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    ExplicitSigma sigma(random_closed_family(rng, 6));
    EXPECT_TRUE(sigma.is_intersection_closed());
  }
}

TEST(Generators, ExactPriorsAreDistributions) {
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    const ExactDistribution p = random_exact_distribution(rng, 3);
    Rational total;
    for (World w = 0; w < 8; ++w) total += p.prob(w);
    EXPECT_EQ(total, Rational(1));
    EXPECT_TRUE(random_exact_log_supermodular(rng, 3).is_log_supermodular());
  }
}

TEST(Generators, QueryTextAlwaysParses) {
  Rng rng(5);
  const std::vector<std::string> names = {"r0", "r1", "r2"};
  for (int i = 0; i < 200; ++i) {
    QueryPtr q;
    const std::string text = random_query_text(rng, names, 3);
    EXPECT_TRUE(try_parse_query(text, &q).ok()) << text;
  }
}

// --- Shrinker ----------------------------------------------------------------

TEST(Shrinker, ReducesToMinimalWitnessPair) {
  // Failure predicate: "A and B intersect" — minimal failing pair is a
  // single shared element.
  FiniteSet a(8, {1, 3, 5, 7});
  FiniteSet b(8, {3, 4, 5});
  auto fails = [](const FiniteSet& x, const FiniteSet& y) {
    return intersection_count(x, y) > 0;
  };
  auto [sa, sb] = shrink_pair(a, b, fails);
  EXPECT_EQ(sa.count(), 1u);
  EXPECT_EQ(sb.count(), 1u);
  EXPECT_TRUE(fails(sa, sb));
}

TEST(Shrinker, UniverseShrinkKeepsPredicate) {
  FiniteSet a(9, {2, 6});
  FiniteSet b(9, {6, 8});
  auto fails = [](const FiniteSet& x, const FiniteSet& y) {
    return intersection_count(x, y) > 0;
  };
  auto [sa, sb] = shrink_universe(a, b, fails);
  EXPECT_TRUE(fails(sa, sb));
  EXPECT_EQ(sa.universe_size(), 1u);  // one world suffices to intersect
}

TEST(Shrinker, CoordinateProjectionPreservesDimensionInvariant) {
  WorldSet a(4, {0b0001, 0b1001});
  WorldSet b(4, {0b0001});
  auto fails = [](const WorldSet& x, const WorldSet& y) {
    return intersection_count(x, y) > 0 && !union_is_universe(x, y);
  };
  auto [sa, sb] = shrink_coordinates(a, b, fails);
  EXPECT_TRUE(fails(sa, sb));
  EXPECT_EQ(sa.n(), 1u);
}

// --- Regression: bugs the model checker found -------------------------------

// The Theorem 3.11 known-world criteria claimed "unsafe" for an actual world
// outside B, where Definition 3.1 is vacuous (shrunk counterexample: m=2,
// A = B = {1}, omega* = 0). Found by possibilistic-unrestricted case 27 and
// probabilistic-unrestricted case 19 of seed 2008.
TEST(ModelCheckRegression, KnownWorldOutsideBIsVacuouslySafe) {
  const FiniteSet a(2, {1}), b(2, {1});
  EXPECT_TRUE(oracle_possibilistic_known_world(a, b, 0).safe);
  EXPECT_TRUE(safe_unrestricted_known_world(a, b, 0));
  // The genuinely unsafe known world (omega* in A ∩ B) stays unsafe.
  EXPECT_FALSE(oracle_possibilistic_known_world(a, b, 1).safe);
  EXPECT_FALSE(safe_unrestricted_known_world(a, b, 1));

  const WorldSet wa(3, {7}), wb(3, {3, 7});
  EXPECT_TRUE(unconditionally_safe_known_world(wa, wb, 0));   // outside B
  EXPECT_TRUE(unconditionally_safe_known_world(wa, wb, 3));   // B - A
  EXPECT_FALSE(unconditionally_safe_known_world(wa, wb, 7));  // A ∩ B
}

// --- Reduced-budget differential run ----------------------------------------

TEST(ModelCheck, AllChecksAgreeWithTheOracles) {
  ModelCheckOptions options;
  options.cases_per_check = 150;  // 1,200 scenarios; CI runs the full 10k
  const ModelCheckReport report = run_model_check(options);
  EXPECT_EQ(report.total_cases, 150u * check_names().size());
  for (const CheckFailure& f : report.failures) {
    ADD_FAILURE() << "[" << f.check << " #" << f.case_index << "] "
                  << f.description;
  }
}

// Seed sweep of the workload-parity check: the family registry must replay
// byte-identically through AuditService incremental sessions for seeds
// other than the CI default, so a lucky default seed cannot hide a
// family/service divergence.
TEST(ModelCheck, WorkloadParityHoldsAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 0xAB5ull, 20080615ull}) {
    ModelCheckOptions options;
    options.seed = seed;
    options.only_check = "workload-parity";
    options.cases_per_check = 40;
    const ModelCheckReport report = run_model_check(options);
    EXPECT_EQ(report.total_cases, 40u);
    for (const CheckFailure& f : report.failures) {
      ADD_FAILURE() << "seed " << seed << ": [" << f.check << " #"
                    << f.case_index << "] " << f.description;
    }
  }
}

TEST(ModelCheck, SingleCaseReproRunsExactlyOneCase) {
  ModelCheckOptions options;
  options.only_check = "sigma-intervals";
  options.only_case = 47;
  const ModelCheckReport report = run_model_check(options);
  EXPECT_EQ(report.total_cases, 1u);
  ASSERT_EQ(report.summaries.size(), 1u);
  EXPECT_EQ(report.summaries[0].name, "sigma-intervals");
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace testing
}  // namespace epi
