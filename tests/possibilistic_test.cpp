#include <gtest/gtest.h>

#include "possibilistic/knowledge.h"
#include "possibilistic/safe.h"
#include "possibilistic/sigma_family.h"
#include "worlds/finite_set.h"
#include "worlds/world_set.h"

namespace epi {
namespace {

TEST(FiniteSet, Basics) {
  FiniteSet s(10, {1, 4, 9});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(s.contains(4));
  EXPECT_FALSE(s.contains(5));
  s.erase(4);
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.min_element(), 1u);
  EXPECT_THROW(FiniteSet(0), std::invalid_argument);
  EXPECT_THROW(s.insert(10), std::out_of_range);
}

TEST(FiniteSet, Algebra) {
  FiniteSet a(6, {0, 1, 2});
  FiniteSet b(6, {2, 3});
  EXPECT_EQ((a & b), FiniteSet(6, {2}));
  EXPECT_EQ((a | b), FiniteSet(6, {0, 1, 2, 3}));
  EXPECT_EQ((a - b), FiniteSet(6, {0, 1}));
  EXPECT_EQ((a ^ b), FiniteSet(6, {0, 1, 3}));
  EXPECT_EQ((~a), FiniteSet(6, {3, 4, 5}));
  EXPECT_TRUE(FiniteSet(6, {1}).subset_of(a));
  EXPECT_TRUE(a.disjoint_with(FiniteSet(6, {4, 5})));
  EXPECT_TRUE(FiniteSet::universe(6).is_universe());
}

TEST(FiniteSet, LargeUniverse) {
  FiniteSet s(200);
  s.insert(130);
  s.insert(64);
  EXPECT_EQ(s.to_vector(), (std::vector<std::size_t>{64, 130}));
  EXPECT_EQ((~s).count(), 198u);
}

TEST(FiniteSet, WorldSetConversion) {
  WorldSet ws(3, {1, 5});
  FiniteSet fs = to_finite(ws);
  EXPECT_EQ(fs.universe_size(), 8u);
  EXPECT_TRUE(fs.contains(1));
  EXPECT_TRUE(fs.contains(5));
  EXPECT_EQ(to_world_set(fs, 3), ws);
  EXPECT_THROW(to_world_set(FiniteSet(7), 3), std::invalid_argument);
}

TEST(KnowledgeWorld, ConsistencyEnforced) {
  // Remark 2.3: pairs with world not in knowledge are inconsistent.
  EXPECT_NO_THROW(KnowledgeWorld(1, FiniteSet(4, {1, 2})));
  EXPECT_THROW(KnowledgeWorld(0, FiniteSet(4, {1, 2})), std::invalid_argument);
}

TEST(SecondLevelKnowledge, ProductExcludesInconsistentPairs) {
  // Definition 2.5: C (x) Sigma keeps only pairs with omega in S.
  FiniteSet c(4, {0, 1});
  std::vector<FiniteSet> sigma = {FiniteSet(4, {1, 2}), FiniteSet(4, {0, 1, 3})};
  auto k = SecondLevelKnowledge::product(c, sigma);
  EXPECT_EQ(k.size(), 3u);  // (1,{1,2}), (0,{0,1,3}), (1,{0,1,3})
  EXPECT_TRUE(k.contains(1, sigma[0]));
  EXPECT_TRUE(k.contains(0, sigma[1]));
  EXPECT_TRUE(k.contains(1, sigma[1]));
  EXPECT_FALSE(k.contains(0, sigma[0]));
  EXPECT_EQ(k.world_projection(), FiniteSet(4, {0, 1}));
}

TEST(SecondLevelKnowledge, FullOmegaPoss) {
  auto k = SecondLevelKnowledge::full(3);
  // sum over subsets S of |S| = 3 * 2^(3-1) = 12 consistent pairs.
  EXPECT_EQ(k.size(), 12u);
  EXPECT_TRUE(k.is_intersection_closed());
  EXPECT_THROW(SecondLevelKnowledge::full(17), std::invalid_argument);
}

TEST(SecondLevelKnowledge, IntersectionClosure) {
  SecondLevelKnowledge k(4);
  k.add(1, FiniteSet(4, {1, 2}));
  k.add(1, FiniteSet(4, {1, 3}));
  EXPECT_FALSE(k.is_intersection_closed());
  auto closed = k.intersection_closure();
  EXPECT_TRUE(closed.is_intersection_closed());
  EXPECT_TRUE(closed.contains(1, FiniteSet(4, {1})));
  EXPECT_EQ(closed.size(), 3u);
}

TEST(SecondLevelKnowledge, PreservingDefinition) {
  // B is K-preserving iff conditioning keeps pairs inside K (Def. 3.9).
  SecondLevelKnowledge k(3);
  k.add(0, FiniteSet(3, {0, 1, 2}));
  k.add(0, FiniteSet(3, {0, 1}));
  FiniteSet b1(3, {0, 1});
  EXPECT_TRUE(k.is_preserving(b1));  // {0,1,2} ∩ B = {0,1} in K; {0,1} ∩ B in K
  FiniteSet b2(3, {0, 2});
  EXPECT_FALSE(k.is_preserving(b2));  // {0,1,2} ∩ B = {0,2} not in K
  FiniteSet b3(3, {1, 2});
  EXPECT_TRUE(k.is_preserving(b3));  // no pair has world in B
}

TEST(SafePossibilistic, Definition31Direct) {
  // Omega = {0,1,2,3}; agent with S = {0,1} learns A = {0} from B = {0,2}
  // because S ∩ B = {0} ⊆ A but S ⊄ A.
  SecondLevelKnowledge k(4);
  k.add(0, FiniteSet(4, {0, 1}));
  FiniteSet a(4, {0});
  FiniteSet b(4, {0, 2});
  EXPECT_FALSE(safe_possibilistic(k, a, b));
  auto violation = find_possibilistic_violation(k, a, b);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->world, 0u);

  // If the agent already knew A, there is no gain: S = {0}.
  SecondLevelKnowledge k2(4);
  k2.add(0, FiniteSet(4, {0}));
  EXPECT_TRUE(safe_possibilistic(k2, a, b));

  // If the world is outside B the pair is discarded.
  SecondLevelKnowledge k3(4);
  k3.add(1, FiniteSet(4, {0, 1}));
  EXPECT_TRUE(safe_possibilistic(k3, a, b));
}

TEST(SafePossibilistic, MonotoneInK) {
  // Remark 3.2: Safe_K and K' ⊆ K imply Safe_K'.
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    SecondLevelKnowledge k(5);
    for (int p = 0; p < 6; ++p) {
      FiniteSet s = FiniteSet::random(5, rng, 0.5);
      if (s.is_empty()) continue;
      // pick a world inside s
      auto v = s.to_vector();
      k.add(v[rng.next_below(v.size())], s);
    }
    if (k.empty()) continue;
    FiniteSet a = FiniteSet::random(5, rng, 0.5);
    FiniteSet b = FiniteSet::random(5, rng, 0.5);
    if (!safe_possibilistic(k, a, b)) continue;
    // any sub-K must also be safe
    SecondLevelKnowledge sub(5);
    for (std::size_t i = 0; i < k.size(); i += 2) {
      sub.add(k.pairs()[i].world, k.pairs()[i].knowledge);
    }
    EXPECT_TRUE(safe_possibilistic(sub, a, b));
  }
}

TEST(SafeCSigma, AgreesWithProductForm) {
  // Proposition 3.3: the (C, Sigma) form equals Def. 3.1 on C (x) Sigma.
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t m = 5;
    FiniteSet c = FiniteSet::random(m, rng, 0.7);
    if (c.is_empty()) c.insert(0);
    std::vector<FiniteSet> sigma;
    for (int i = 0; i < 4; ++i) {
      FiniteSet s = FiniteSet::random(m, rng, 0.5);
      if (!s.is_empty()) sigma.push_back(s);
    }
    if (sigma.empty()) continue;
    FiniteSet a = FiniteSet::random(m, rng, 0.5);
    FiniteSet b = FiniteSet::random(m, rng, 0.6);
    auto k = SecondLevelKnowledge::product(c, sigma);
    ExplicitSigma family(sigma);
    EXPECT_EQ(safe_possibilistic(k, a, b), safe_c_sigma(c, family, a, b))
        << "trial " << trial;
  }
}

TEST(Composition, Proposition310) {
  // If B1, B2 are safe and at least one is K-preserving, B1 ∩ B2 is safe;
  // and intersections of preserving sets are preserving.
  Rng rng(31);
  int checked = 0;
  for (int trial = 0; trial < 500 && checked < 50; ++trial) {
    const std::size_t m = 5;
    SecondLevelKnowledge k(m);
    for (int p = 0; p < 5; ++p) {
      FiniteSet s = FiniteSet::random(m, rng, 0.5);
      if (s.is_empty()) continue;
      auto v = s.to_vector();
      k.add(v[rng.next_below(v.size())], s);
    }
    if (k.empty()) continue;
    FiniteSet a = FiniteSet::random(m, rng, 0.4);
    FiniteSet b1 = FiniteSet::random(m, rng, 0.6);
    FiniteSet b2 = FiniteSet::random(m, rng, 0.6);
    if (!k.is_preserving(b1) && !k.is_preserving(b2)) continue;
    if (k.is_preserving(b1) && k.is_preserving(b2)) {
      EXPECT_TRUE(k.is_preserving(b1 & b2));
    }
    if (!safe_possibilistic(k, a, b1) || !safe_possibilistic(k, a, b2)) continue;
    EXPECT_TRUE(safe_possibilistic(k, a, b1 & b2)) << "trial " << trial;
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(UnrestrictedPrior, Theorem311Possibilistic) {
  // Safe over Omega_poss iff A ∩ B = {} or A ∪ B = Omega — checked
  // exhaustively against Def. 3.1 on the full Omega_poss for m = 3.
  const std::size_t m = 3;
  auto full = SecondLevelKnowledge::full(m);
  for (std::size_t am = 0; am < 8; ++am) {
    for (std::size_t bm = 1; bm < 8; ++bm) {  // B non-empty (B is disclosed truth)
      FiniteSet a(m), b(m);
      for (std::size_t e = 0; e < m; ++e) {
        if ((am >> e) & 1) a.insert(e);
        if ((bm >> e) & 1) b.insert(e);
      }
      EXPECT_EQ(safe_possibilistic(full, a, b), safe_unrestricted(a, b))
          << "A=" << a.to_string() << " B=" << b.to_string();
    }
  }
}

TEST(UnrestrictedPrior, Theorem311KnownWorldPossibilistic) {
  // Safe over {omega*} (x) P(Omega) iff A∩B={}, A∪B=Omega, or omega* in B-A.
  const std::size_t m = 3;
  PowerSetSigma power(m);
  for (std::size_t am = 0; am < 8; ++am) {
    for (std::size_t bm = 1; bm < 8; ++bm) {
      FiniteSet a(m), b(m);
      for (std::size_t e = 0; e < m; ++e) {
        if ((am >> e) & 1) a.insert(e);
        if ((bm >> e) & 1) b.insert(e);
      }
      b.visit([&](std::size_t actual) {  // omega* must satisfy B
        FiniteSet c = FiniteSet::singleton(m, actual);
        auto k = SecondLevelKnowledge::product(c, power.enumerate());
        EXPECT_EQ(safe_possibilistic(k, a, b),
                  safe_unrestricted_known_world(a, b, actual))
            << "A=" << a.to_string() << " B=" << b.to_string() << " w=" << actual;
      });
    }
  }
}

TEST(ExplicitSigma, IntersectionClosureAndIntervals) {
  std::vector<FiniteSet> sets = {FiniteSet(4, {0, 1, 2}), FiniteSet(4, {1, 2, 3})};
  ExplicitSigma sigma(sets);
  EXPECT_FALSE(sigma.is_intersection_closed());
  ExplicitSigma closed = sigma.intersection_closure();
  EXPECT_TRUE(closed.is_intersection_closed());
  EXPECT_TRUE(closed.contains(FiniteSet(4, {1, 2})));
  auto iv = closed.interval(1, 2);
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(*iv, FiniteSet(4, {1, 2}));
  EXPECT_FALSE(closed.interval(0, 3).has_value() &&
               closed.contains(*closed.interval(0, 3)));
}

TEST(PowerSetSigma, IntervalsAreSingletonPairs) {
  PowerSetSigma sigma(5);
  auto iv = sigma.interval(1, 3);
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(*iv, FiniteSet(5, {1, 3}));
  EXPECT_EQ(sigma.enumerate().size(), 31u);
}

}  // namespace
}  // namespace epi
