// Tests for the synthetic workload generator.
#include <gtest/gtest.h>

#include "core/auditor.h"
#include "core/workload.h"
#include "db/parser.h"

namespace epi {
namespace {

TEST(Workload, GeneratesRequestedShape) {
  WorkloadOptions options;
  options.patients = 5;
  options.queries = 40;
  options.users = 3;
  Workload w = make_hospital_workload(options);
  EXPECT_EQ(w.universe.size(), 5u);
  EXPECT_EQ(w.log.size(), 40u);
  EXPECT_LE(w.log.users().size(), 3u);
  EXPECT_EQ(w.audit_candidates.size(), 5u);
  for (const auto& name : w.audit_candidates) {
    EXPECT_TRUE(w.universe.coordinate_of(name).has_value());
  }
}

TEST(Workload, Deterministic) {
  WorkloadOptions options;
  options.seed = 99;
  Workload w1 = make_hospital_workload(options);
  Workload w2 = make_hospital_workload(options);
  ASSERT_EQ(w1.log.size(), w2.log.size());
  for (std::size_t i = 0; i < w1.log.size(); ++i) {
    EXPECT_EQ(w1.log.entries()[i].query_text, w2.log.entries()[i].query_text);
    EXPECT_EQ(w1.log.entries()[i].answer, w2.log.entries()[i].answer);
  }
  EXPECT_EQ(w1.database.state(), w2.database.state());
}

TEST(Workload, AllQueriesParseAndMatchRecordedAnswers) {
  WorkloadOptions options;
  options.queries = 80;
  Workload w = make_hospital_workload(options);
  for (const Disclosure& d : w.log.entries()) {
    const QueryPtr q = parse_query(d.query_text);
    EXPECT_EQ(q->evaluate(w.universe, w.database.state()), d.answer)
        << d.query_text;
  }
}

TEST(Workload, QueryMixCoversAllShapes) {
  WorkloadOptions options;
  options.queries = 300;
  Workload w = make_hospital_workload(options);
  int implications = 0, negations = 0, counts = 0, points = 0;
  for (const Disclosure& d : w.log.entries()) {
    if (d.query_text.find("->") != std::string::npos) {
      ++implications;
    } else if (d.query_text.find('!') != std::string::npos) {
      ++negations;
    } else if (d.query_text.find("atleast") != std::string::npos ||
               d.query_text.find("atmost") != std::string::npos) {
      ++counts;
    } else {
      ++points;
    }
  }
  EXPECT_GT(implications, 20);
  EXPECT_GT(negations, 20);
  EXPECT_GT(counts, 20);
  EXPECT_GT(points, 30);
}

TEST(Workload, AuditsEndToEndUnderEveryPrior) {
  WorkloadOptions options;
  options.patients = 3;
  options.queries = 20;
  Workload w = make_hospital_workload(options);
  for (PriorAssumption prior :
       {PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
        PriorAssumption::kLogSupermodular}) {
    AuditorOptions auditor_options;
    auditor_options.enable_sos = false;
    Auditor auditor(w.universe, prior, auditor_options);
    const AuditReport report = auditor.audit(w.log, w.audit_candidates[0]);
    EXPECT_EQ(report.per_disclosure.size(), 20u);
    // Every finding must carry a method string.
    for (const AuditFinding& f : report.per_disclosure) {
      EXPECT_FALSE(f.method.empty());
    }
  }
}

TEST(Workload, RejectsBadOptions) {
  WorkloadOptions options;
  options.patients = 0;
  EXPECT_THROW(make_hospital_workload(options), std::invalid_argument);
  Rng rng(1);
  WorkloadOptions zero_mix;
  zero_mix.point_weight = zero_mix.implication_weight = zero_mix.negation_weight =
      zero_mix.counting_weight = 0.0;
  EXPECT_THROW(random_workload_query({"a"}, rng, zero_mix), std::invalid_argument);
  // Negative weights are rejected too, even when the total is positive —
  // they silently skewed the mix before WorkloadOptions::validate() existed.
  WorkloadOptions negative_mix;
  negative_mix.point_weight = -0.5;
  EXPECT_THROW(random_workload_query({"a"}, rng, negative_mix),
               std::invalid_argument);
  EXPECT_THROW(make_hospital_workload(negative_mix), std::invalid_argument);
}

TEST(Workload, ValidateReportsEachBadKnob) {
  EXPECT_TRUE(WorkloadOptions{}.validate().ok());

  WorkloadOptions bad;
  bad.patients = kMaxCoordinates + 1;
  EXPECT_EQ(bad.validate().code(), Status::Code::kInvalidArgument);

  bad = WorkloadOptions{};
  bad.queries = -1;
  EXPECT_EQ(bad.validate().code(), Status::Code::kInvalidArgument);

  bad = WorkloadOptions{};
  bad.users = 0;
  EXPECT_EQ(bad.validate().code(), Status::Code::kInvalidArgument);

  bad = WorkloadOptions{};
  bad.record_present_prob = 1.5;
  EXPECT_EQ(bad.validate().code(), Status::Code::kInvalidArgument);

  bad = WorkloadOptions{};
  bad.counting_weight = -0.1;
  EXPECT_EQ(bad.validate().code(), Status::Code::kInvalidArgument);

  bad = WorkloadOptions{};
  bad.point_weight = bad.implication_weight = bad.negation_weight =
      bad.counting_weight = 0.0;
  EXPECT_EQ(bad.validate().code(), Status::Code::kInvalidArgument);
}

TEST(Workload, TryMakeHospitalWorkloadStatusSurface) {
  WorkloadOptions options;
  options.patients = 3;
  options.queries = 10;
  Workload made{RecordUniverse{}};
  ASSERT_TRUE(try_make_hospital_workload(options, &made).ok());
  EXPECT_EQ(made.universe.size(), 3u);
  EXPECT_EQ(made.log.size(), 10u);

  options.implication_weight = -1.0;
  Workload untouched{RecordUniverse{}};
  const Status rejected = try_make_hospital_workload(options, &untouched);
  EXPECT_EQ(rejected.code(), Status::Code::kInvalidArgument);
  EXPECT_TRUE(untouched.universe.empty());  // left untouched on failure
  EXPECT_EQ(try_make_hospital_workload(WorkloadOptions{}, nullptr).code(),
            Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace epi
