// Tests for the confidence-trajectory simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.h"
#include "db/parser.h"

namespace epi {
namespace {

struct Scenario {
  RecordUniverse universe;
  InMemoryDatabase db;
  AuditLog log;

  Scenario() : db(make_universe()) {
    universe = db.universe();
  }

  static RecordUniverse make_universe() {
    RecordUniverse u;
    u.add("r1");
    u.add("r2");
    return u;
  }
};

TEST(Trajectory, StartsAtPriorProbability) {
  Scenario s;
  const WorldSet a = parse_query("r1")->compile(s.universe);
  auto traj = confidence_trajectory(Distribution::uniform(2), s.log, s.universe,
                                    a, "alice");
  ASSERT_EQ(traj.size(), 1u);
  EXPECT_NEAR(traj[0].confidence, 0.5, 1e-12);
}

TEST(Trajectory, ImplicationAnswerLowersConfidence) {
  Scenario s;
  s.db.insert("r1");
  s.db.insert("r2");
  s.log.record("alice", "r1 -> r2", s.db);
  const WorldSet a = parse_query("r1")->compile(s.universe);
  auto traj = confidence_trajectory(Distribution::uniform(2), s.log, s.universe,
                                    a, "alice");
  ASSERT_EQ(traj.size(), 2u);
  // P[A] = 1/2; P[A | B] = 1/3: confidence drops (the Section 1.1 table).
  EXPECT_NEAR(traj[1].confidence, 1.0 / 3.0, 1e-12);
  EXPECT_LT(traj[1].confidence, traj[0].confidence);
}

TEST(Trajectory, DirectAnswerRaisesConfidenceToOne) {
  Scenario s;
  s.db.insert("r1");
  s.log.record("mallory", "r1", s.db);
  const WorldSet a = parse_query("r1")->compile(s.universe);
  auto traj = confidence_trajectory(Distribution::uniform(2), s.log, s.universe,
                                    a, "mallory");
  ASSERT_EQ(traj.size(), 2u);
  EXPECT_NEAR(traj[1].confidence, 1.0, 1e-12);
}

TEST(Trajectory, OnlyTheNamedUsersDisclosures) {
  Scenario s;
  s.db.insert("r1");
  s.log.record("mallory", "r1", s.db);
  s.log.record("alice", "r2", s.db);
  const WorldSet a = parse_query("r1")->compile(s.universe);
  auto traj = confidence_trajectory(Distribution::uniform(2), s.log, s.universe,
                                    a, "alice");
  ASSERT_EQ(traj.size(), 2u);
  EXPECT_EQ(traj[1].query_text, "r2");
  EXPECT_NEAR(traj[1].confidence, 0.5, 1e-12);  // independent record
}

TEST(Trajectory, InconsistentPriorFlagged) {
  Scenario s;
  s.db.insert("r1");
  s.log.record("alice", "r1", s.db);  // answer true
  const WorldSet a = parse_query("r1")->compile(s.universe);
  // A prior certain that r1 is absent cannot explain the observed answer.
  std::vector<double> w(4, 0.0);
  w[world_from_string("00")] = 0.5;
  w[world_from_string("01")] = 0.5;
  Distribution prior(2, w);
  auto traj = confidence_trajectory(prior, s.log, s.universe, a, "alice");
  ASSERT_EQ(traj.size(), 2u);
  EXPECT_TRUE(traj[1].inconsistent);
  EXPECT_TRUE(std::isnan(traj[1].confidence));
}

TEST(Trajectory, SequentialConditioningMatchesConjunction) {
  Scenario s;
  s.db.insert("r1");
  s.db.insert("r2");
  s.log.record("eve", "r1 | !r2", s.db);
  s.log.record("eve", "r1 | r2", s.db);
  const WorldSet a = parse_query("r1")->compile(s.universe);
  Rng rng(5);
  const Distribution prior = Distribution::random(2, rng);
  auto traj = confidence_trajectory(prior, s.log, s.universe, a, "eve");
  ASSERT_EQ(traj.size(), 3u);
  const WorldSet b1 = s.log.entries()[0].disclosed_set(s.universe);
  const WorldSet b2 = s.log.entries()[1].disclosed_set(s.universe);
  EXPECT_NEAR(traj[2].confidence, prior.conditional(a, b1 & b2), 1e-12);
}

TEST(Trajectory, RenderProducesOneLinePerPoint) {
  Scenario s;
  s.db.insert("r1");
  s.log.record("alice", "r1", s.db);
  const WorldSet a = parse_query("r1")->compile(s.universe);
  auto traj = confidence_trajectory(Distribution::uniform(2), s.log, s.universe,
                                    a, "alice");
  const std::string chart = render_trajectory(traj);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 2);
  EXPECT_NE(chart.find("prior"), std::string::npos);
  EXPECT_NE(chart.find("####"), std::string::npos);
}

}  // namespace
}  // namespace epi
