// Tests for the counting-query extension (atleast/atmost) and its
// interaction with the monotonicity criteria.
#include <gtest/gtest.h>

#include "criteria/monotonicity.h"
#include "db/database.h"
#include "db/parser.h"
#include "worlds/monotone.h"

namespace epi {
namespace {

RecordUniverse four_records() {
  RecordUniverse u;
  u.add("r0");
  u.add("r1");
  u.add("r2");
  u.add("r3");
  return u;
}

TEST(CountingQuery, AtLeastSemantics) {
  RecordUniverse u = four_records();
  QueryPtr q = at_least(2, {"r0", "r1", "r2"});
  EXPECT_TRUE(q->evaluate(u, world_from_string("1100")));
  EXPECT_TRUE(q->evaluate(u, world_from_string("1110")));
  EXPECT_FALSE(q->evaluate(u, world_from_string("1000")));
  EXPECT_FALSE(q->evaluate(u, world_from_string("0001")));
  // k = 0 is a tautology.
  EXPECT_TRUE(at_least(0, {"r0"})->evaluate(u, 0));
}

TEST(CountingQuery, AtMostSemantics) {
  RecordUniverse u = four_records();
  QueryPtr q = at_most(1, {"r0", "r1", "r2"});
  EXPECT_TRUE(q->evaluate(u, world_from_string("1000")));
  EXPECT_TRUE(q->evaluate(u, world_from_string("0001")));
  EXPECT_FALSE(q->evaluate(u, world_from_string("1100")));
}

TEST(CountingQuery, ComplementRelation) {
  // atmost(k, ...) == !atleast(k+1, ...).
  RecordUniverse u = four_records();
  QueryPtr lhs = at_most(1, {"r0", "r1", "r3"});
  QueryPtr rhs = !at_least(2, {"r0", "r1", "r3"});
  EXPECT_EQ(lhs->compile(u), rhs->compile(u));
}

TEST(CountingQuery, UnknownRecordThrows) {
  RecordUniverse u = four_records();
  EXPECT_THROW(at_least(1, {"ghost"})->evaluate(u, 0), std::invalid_argument);
  EXPECT_THROW(at_least(1, std::vector<std::string>{}), std::invalid_argument);
}

TEST(CountingQuery, ParserSyntax) {
  RecordUniverse u = four_records();
  QueryPtr parsed = parse_query("atleast(2, r0, r1, r2)");
  EXPECT_EQ(parsed->compile(u), at_least(2, {"r0", "r1", "r2"})->compile(u));
  QueryPtr parsed2 = parse_query("atmost(0, r3) & r0");
  EXPECT_TRUE(parsed2->evaluate(u, world_from_string("1000")));
  EXPECT_FALSE(parsed2->evaluate(u, world_from_string("1001")));
  // Round trip through to_string.
  QueryPtr reparsed = parse_query(parsed->to_string());
  EXPECT_EQ(parsed->compile(u), reparsed->compile(u));
}

TEST(CountingQuery, ParserErrors) {
  EXPECT_THROW(parse_query("atleast 2, r0)"), ParseError);
  EXPECT_THROW(parse_query("atleast(x, r0)"), ParseError);
  EXPECT_THROW(parse_query("atleast(2)"), ParseError);
  EXPECT_THROW(parse_query("atleast(2, r0"), ParseError);
  EXPECT_THROW(parse_query("atmost(1, )"), ParseError);
}

TEST(CountingQuery, AtLeastIsMonotone) {
  // atleast compiles to an up-set, atmost to a down-set — so the negative
  // answer to a threshold query protects positive threshold facts
  // (Corollary 5.5 applied to aggregates).
  RecordUniverse u = four_records();
  const WorldSet least = at_least(2, {"r0", "r1", "r2", "r3"})->compile(u);
  const WorldSet most = at_most(1, {"r0", "r1", "r2"})->compile(u);
  EXPECT_TRUE(is_upset(least));
  EXPECT_TRUE(is_downset(most));
  EXPECT_TRUE(upset_downset_criterion(least, most));
}

TEST(CountingQuery, WorksThroughDatabase) {
  RecordUniverse u = four_records();
  InMemoryDatabase db(u);
  db.insert("r0");
  db.insert("r2");
  EXPECT_TRUE(db.answer("atleast(2, r0, r1, r2)"));
  EXPECT_FALSE(db.answer("atleast(3, r0, r1, r2)"));
  EXPECT_TRUE(db.answer("atmost(2, r0, r1, r2, r3)"));
}

}  // namespace
}  // namespace epi
