// Cross-module property tests of the privacy semantics: invariances of the
// criteria, composition laws, liftability, and agreement between independent
// implementations of the same predicate.
#include <gtest/gtest.h>

#include <algorithm>

#include "criteria/box_necessary.h"
#include "criteria/cancellation.h"
#include "criteria/miklau_suciu.h"
#include "criteria/monotonicity.h"
#include "optimize/coordinate_ascent.h"
#include "probabilistic/family.h"
#include "probabilistic/modularity.h"
#include "probabilistic/safe.h"

namespace epi {
namespace {

// The product-prior family is closed under XOR relabelings of the world
// space (p_i <-> 1 - p_i), so every product-safety notion and criterion must
// be mask-invariant.
class MaskInvariance : public ::testing::TestWithParam<unsigned> {
 protected:
  unsigned n() const { return GetParam(); }
};

TEST_P(MaskInvariance, CancellationCriterion) {
  Rng rng(42 + n());
  for (int t = 0; t < 40; ++t) {
    WorldSet a = WorldSet::random(n(), rng, 0.5);
    WorldSet b = WorldSet::random(n(), rng, 0.5);
    const World mask = static_cast<World>(rng.next_bits(n()));
    EXPECT_EQ(cancellation_criterion(a, b).holds,
              cancellation_criterion(a.xor_with(mask), b.xor_with(mask)).holds)
        << "A=" << a.to_string() << " B=" << b.to_string() << " z=" << mask;
  }
}

TEST_P(MaskInvariance, BoxNecessaryCriterion) {
  Rng rng(43 + n());
  for (int t = 0; t < 40; ++t) {
    WorldSet a = WorldSet::random(n(), rng, 0.5);
    WorldSet b = WorldSet::random(n(), rng, 0.5);
    const World mask = static_cast<World>(rng.next_bits(n()));
    EXPECT_EQ(box_necessary_criterion(a, b).holds,
              box_necessary_criterion(a.xor_with(mask), b.xor_with(mask)).holds);
  }
}

TEST_P(MaskInvariance, MiklauSuciuAndMonotonicity) {
  Rng rng(44 + n());
  for (int t = 0; t < 40; ++t) {
    WorldSet a = WorldSet::random(n(), rng, 0.5);
    WorldSet b = WorldSet::random(n(), rng, 0.5);
    const World mask = static_cast<World>(rng.next_bits(n()));
    EXPECT_EQ(miklau_suciu_independent(a, b),
              miklau_suciu_independent(a.xor_with(mask), b.xor_with(mask)));
    EXPECT_EQ(monotonicity_criterion(a, b),
              monotonicity_criterion(a.xor_with(mask), b.xor_with(mask)));
  }
}

TEST_P(MaskInvariance, NumericGap) {
  Rng rng(45 + n());
  for (int t = 0; t < 8; ++t) {
    WorldSet a = WorldSet::random(n(), rng, 0.5);
    WorldSet b = WorldSet::random(n(), rng, 0.5);
    const World mask = static_cast<World>(rng.next_bits(n()));
    AscentOptions opts;
    opts.seed = 7000 + t;
    const double g1 = maximize_product_gap(a, b, opts).max_gap;
    const double g2 =
        maximize_product_gap(a.xor_with(mask), b.xor_with(mask), opts).max_gap;
    EXPECT_NEAR(g1, g2, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(AllN, MaskInvariance, ::testing::Values(2u, 3u, 4u));

// Criteria are symmetric under swapping A and B where the paper's algebra
// is: the gap P[AB] - P[A]P[B] is symmetric, so exact safety, cancellation
// counts and box counts all are.
TEST(Symmetry, GapAndCriteriaSymmetricInAB) {
  Rng rng(77);
  const unsigned n = 4;
  for (int t = 0; t < 40; ++t) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    EXPECT_EQ(cancellation_criterion(a, b).holds, cancellation_criterion(b, a).holds);
    EXPECT_EQ(box_necessary_criterion(a, b).holds, box_necessary_criterion(b, a).holds);
    EXPECT_EQ(miklau_suciu_independent(a, b), miklau_suciu_independent(b, a));
    auto p = ProductDistribution::random(n, rng);
    EXPECT_NEAR(p.safety_gap(a, b), p.safety_gap(b, a), 1e-12);
  }
}

// Proposition 3.10 (probabilistic): B1, B2 individually safe and one of them
// K-preserving implies B1 ∩ B2 safe.
TEST(Composition, Proposition310Probabilistic) {
  Rng rng(88);
  const unsigned n = 3;
  int exercised = 0;
  for (int t = 0; t < 400 && exercised < 30; ++t) {
    // Build K closed under conditioning on B1 to make B1 K-preserving.
    WorldSet b1 = WorldSet::random(n, rng, 0.7);
    WorldSet b2 = WorldSet::random(n, rng, 0.7);
    if (b1.is_empty() || b2.is_empty() || (b1 & b2).is_empty()) continue;
    Distribution base = Distribution::random(n, rng);
    std::vector<Distribution> pi = {base, base.conditioned_on(b1)};
    auto k = ProbSecondLevelKnowledge::product(WorldSet::universe(n), pi);
    if (!k.is_preserving(b1)) continue;
    WorldSet a = WorldSet::random(n, rng, 0.5);
    if (!safe_probabilistic(k, a, b1) || !safe_probabilistic(k, a, b2)) continue;
    ++exercised;
    EXPECT_TRUE(safe_probabilistic(k, a, b1 & b2))
        << "A=" << a.to_string() << " B1=" << b1.to_string()
        << " B2=" << b2.to_string();
  }
  EXPECT_GT(exercised, 5);
}

// Remark 3.5: Safe is antitone in K (probabilistic).
TEST(Monotone, SafeAntitoneInProbabilisticK) {
  Rng rng(99);
  const unsigned n = 3;
  for (int t = 0; t < 50; ++t) {
    std::vector<Distribution> pi;
    for (int i = 0; i < 5; ++i) pi.push_back(Distribution::random(n, rng));
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.6);
    if (b.is_empty()) continue;
    auto k = ProbSecondLevelKnowledge::product(WorldSet::universe(n), pi);
    if (!safe_probabilistic(k, a, b)) continue;
    // Any sub-K stays safe.
    ProbSecondLevelKnowledge sub(n);
    for (std::size_t i = 0; i < k.size(); i += 2) {
      sub.add(k.pairs()[i].world, k.pairs()[i].prior);
    }
    EXPECT_TRUE(safe_probabilistic(sub, a, b));
  }
}

// Proposition 3.8 / Definition 3.7: the product family is Omega-liftable —
// any product prior with P(w) = 0 has arbitrarily close product priors with
// P(w) > 0 (clamp the Bernoulli parameters away from {0,1}).
TEST(Liftability, ProductFamilyIsLiftable) {
  Rng rng(111);
  const unsigned n = 4;
  for (int t = 0; t < 30; ++t) {
    // A degenerate product prior.
    std::vector<double> params(n);
    for (double& p : params) {
      const double r = rng.next_double();
      p = r < 0.3 ? 0.0 : (r < 0.6 ? 1.0 : r);
    }
    const ProductDistribution degenerate(params);
    const World w = static_cast<World>(rng.next_bits(n));
    if (degenerate.prob(w) > 0.0) continue;
    for (double eps : {1e-3, 1e-6, 1e-9}) {
      std::vector<double> lifted = params;
      for (double& p : lifted) p = std::clamp(p, eps, 1.0 - eps);
      const ProductDistribution close(lifted);
      EXPECT_GT(close.prob(w), 0.0);
      double linf = 0.0;
      const std::size_t size = std::size_t{1} << n;
      for (World v = 0; v < size; ++v) {
        linf = std::max(linf, std::abs(close.prob(v) - degenerate.prob(v)));
      }
      EXPECT_LT(linf, 8 * eps);  // within O(n * eps) of the original
    }
  }
}

// Conditioning semantics (Section 3.3): support containment, normalization,
// and the chain rule P(.|B1)(.|B2) = P(.|B1 ∩ B2).
TEST(Conditioning, ChainRule) {
  Rng rng(123);
  const unsigned n = 3;
  for (int t = 0; t < 30; ++t) {
    Distribution p = Distribution::random(n, rng);
    WorldSet b1 = WorldSet::random(n, rng, 0.7);
    WorldSet b2 = WorldSet::random(n, rng, 0.7);
    if ((b1 & b2).is_empty()) continue;
    Distribution step = p.conditioned_on(b1).conditioned_on(b2);
    Distribution direct = p.conditioned_on(b1 & b2);
    for (World w = 0; w < p.omega_size(); ++w) {
      EXPECT_NEAR(step.prob(w), direct.prob(w), 1e-9);
    }
    EXPECT_TRUE(step.support().subset_of(b1 & b2));
  }
}

// Witness contract: every unsafe verdict's witness must actually violate
// safety — checked end-to-end through the box criterion.
TEST(WitnessContract, BoxWitnessAlwaysViolates) {
  Rng rng(131);
  for (unsigned n = 2; n <= 5; ++n) {
    int violated = 0;
    for (int t = 0; t < 200 && violated < 25; ++t) {
      WorldSet a = WorldSet::random(n, rng, 0.5);
      WorldSet b = WorldSet::random(n, rng, 0.5);
      auto result = box_necessary_criterion(a, b);
      if (result.holds) continue;
      ++violated;
      ASSERT_TRUE(result.witness.has_value());
      EXPECT_GT(result.witness->safety_gap(a, b), 0.0) << "n=" << n;
    }
    EXPECT_GT(violated, 5) << "n=" << n;
  }
}

// Degenerate inputs across the probabilistic layer.
TEST(EdgeCases, EmptyAndUniverseSets) {
  const unsigned n = 3;
  const WorldSet empty(n);
  const WorldSet universe = WorldSet::universe(n);
  Rng rng(141);
  const Distribution p = Distribution::random(n, rng);
  // A empty or B = Omega: gap = 0 exactly.
  WorldSet b = WorldSet::random(n, rng, 0.5);
  EXPECT_DOUBLE_EQ(p.safety_gap(empty, b), 0.0);
  EXPECT_NEAR(p.safety_gap(b, universe), 0.0, 1e-12);
  // Criteria agree these are safe.
  EXPECT_TRUE(cancellation_criterion(empty, b).holds);
  EXPECT_TRUE(box_necessary_criterion(empty, b).holds);
  EXPECT_TRUE(cancellation_criterion(b, universe).holds);
  // A = B = Omega also safe (knowing a tautology).
  EXPECT_TRUE(cancellation_criterion(universe, universe).holds);
}

TEST(EdgeCases, SingleCoordinateWorld) {
  // n = 1: the smallest world space. A = B = {1}: unsafe; A = {1}, B = {0}:
  // disjoint, safe; A = {0,1}: trivially safe.
  const unsigned n = 1;
  WorldSet one(n, {1});
  WorldSet zero(n, {0});
  EXPECT_FALSE(box_necessary_criterion(one, one).holds);
  EXPECT_TRUE(cancellation_criterion(one, zero).holds);
  EXPECT_TRUE(cancellation_criterion(WorldSet::universe(n), one).holds);
  AscentOptions opts;
  EXPECT_GT(maximize_product_gap(one, one, opts).max_gap, 0.1);
  EXPECT_LE(maximize_product_gap(one, zero, opts).max_gap, 1e-12);
}

}  // namespace
}  // namespace epi
