// The batch-first audit surface: Auditor::audit_many must be a pure
// throughput optimization — reports[i] byte-identical to a loop of single
// audit() calls (findings, verdicts, and every counter except wall time) —
// and try_audit_many must route malformed queries into Status instead of
// throwing.
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/auditor.h"
#include "core/report.h"
#include "core/workload.h"
#include "db/parser.h"

namespace epi {
namespace {

AuditorOptions batch_options(unsigned threads = 1) {
  AuditorOptions options;
  options.enable_sos = false;
  options.ascent.multistarts = 8;
  options.threads = threads;
  return options;
}

/// Field-by-field finding equality (gtest has no operator== for the struct).
void expect_findings_equal(const std::vector<AuditFinding>& got,
                           const std::vector<AuditFinding>& want,
                           const char* section) {
  ASSERT_EQ(got.size(), want.size()) << section;
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << section << "[" << i << "]");
    EXPECT_EQ(got[i].user, want[i].user);
    EXPECT_EQ(got[i].query_text, want[i].query_text);
    EXPECT_EQ(got[i].answer, want[i].answer);
    EXPECT_EQ(got[i].verdict, want[i].verdict);
    EXPECT_EQ(got[i].method, want[i].method);
    EXPECT_EQ(got[i].certified, want[i].certified);
    EXPECT_EQ(got[i].numeric_gap, want[i].numeric_gap);
    EXPECT_EQ(got[i].detail, want[i].detail);
  }
}

/// Every counter except the stage wall-time ones must agree: compile
/// hits/misses, memo lookups/hits, stage invocations/decisions.
void expect_metrics_equal(const obs::MetricsSnapshot& got,
                          const obs::MetricsSnapshot& want) {
  auto timeless = [](const obs::MetricsSnapshot& snapshot) {
    std::vector<std::pair<std::string, std::int64_t>> out;
    for (const obs::CounterSample& c : snapshot.counters) {
      if (c.name.size() >= 6 &&
          c.name.compare(c.name.size() - 6, 6, ".nanos") == 0) {
        continue;
      }
      out.emplace_back(c.name, c.value);
    }
    return out;
  };
  EXPECT_EQ(timeless(got), timeless(want));
}

void expect_reports_equal(const AuditReport& got, const AuditReport& want) {
  EXPECT_EQ(got.audit_query, want.audit_query);
  EXPECT_EQ(got.prior, want.prior);
  expect_findings_equal(got.per_disclosure, want.per_disclosure,
                        "per_disclosure");
  expect_findings_equal(got.per_user_cumulative, want.per_user_cumulative,
                        "per_user_cumulative");
  expect_metrics_equal(got.metrics, want.metrics);
  // The formatted report is the CLI/service-visible artifact; identical
  // findings must render identically.
  EXPECT_EQ(format_report(got), format_report(want));
}

std::vector<std::string> batch_queries(const Workload& workload,
                                       std::size_t count) {
  // Reuse the workload's audit candidates, cycling with variations so the
  // batch mixes repeated and distinct audited properties.
  std::vector<std::string> queries;
  const std::vector<std::string>& base = workload.audit_candidates;
  for (std::size_t i = 0; queries.size() < count; ++i) {
    const std::string& q = base[i % base.size()];
    queries.push_back(i % 3 == 2 ? "!(" + q + ")" : q);
  }
  return queries;
}

class BatchAuditTest : public ::testing::TestWithParam<PriorAssumption> {};

TEST_P(BatchAuditTest, AuditManyMatchesSingleAuditLoop) {
  WorkloadOptions wl;
  wl.patients = 6;
  wl.queries = 40;
  wl.seed = 0xBA7C4;
  const Workload workload = make_hospital_workload(wl);
  const Auditor auditor(workload.universe, GetParam(), batch_options());

  const std::vector<std::string> queries = batch_queries(workload, 9);
  const std::vector<AuditReport> batched =
      auditor.audit_many(workload.log, queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "query[" << i << "] " << queries[i]);
    const AuditReport single = auditor.audit(workload.log, queries[i]);
    expect_reports_equal(batched[i], single);
  }
}

TEST_P(BatchAuditTest, ThreadedBatchMatchesSerialBatch) {
  WorkloadOptions wl;
  wl.patients = 6;
  wl.queries = 40;
  wl.seed = 0xBA7C4;
  const Workload workload = make_hospital_workload(wl);
  const Auditor serial(workload.universe, GetParam(), batch_options(1));
  const Auditor threaded(workload.universe, GetParam(), batch_options(4));

  const std::vector<std::string> queries = batch_queries(workload, 5);
  const std::vector<AuditReport> a = serial.audit_many(workload.log, queries);
  const std::vector<AuditReport> b = threaded.audit_many(workload.log, queries);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "query[" << i << "]");
    expect_reports_equal(b[i], a[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Priors, BatchAuditTest,
    ::testing::Values(PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
                      PriorAssumption::kLogSupermodular,
                      PriorAssumption::kSubcubeKnowledge),
    [](const ::testing::TestParamInfo<PriorAssumption>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-' || c == ' ') c = '_';
      }
      return name;
    });

TEST(BatchAudit, AmortizesDisclosureCompilation) {
  WorkloadOptions wl;
  wl.patients = 6;
  wl.queries = 40;
  wl.seed = 0xBA7C4;
  const Workload workload = make_hospital_workload(wl);
  const Auditor auditor(workload.universe, PriorAssumption::kUnrestricted,
                        batch_options());
  const std::vector<std::string> queries = batch_queries(workload, 8);

  const std::size_t before = disclosed_set_call_count();
  const std::vector<AuditReport> reports =
      auditor.audit_many(workload.log, queries);
  const std::size_t batch_compiles = disclosed_set_call_count() - before;

  const std::size_t single_before = disclosed_set_call_count();
  for (const std::string& q : queries) auditor.audit(workload.log, q);
  const std::size_t loop_compiles = disclosed_set_call_count() - single_before;

  // The batch compiles each distinct disclosed set once; the loop once per
  // report. (Both report identical per-report compile *counters* — the
  // amortization is real work saved, not accounting.)
  EXPECT_EQ(batch_compiles * queries.size(), loop_compiles);
  EXPECT_GT(reports.size(), 0u);
}

TEST(BatchAudit, TryAuditManyNamesTheOffendingQuery) {
  WorkloadOptions wl;
  wl.patients = 4;
  wl.queries = 10;
  wl.seed = 0xBA7C4;
  const Workload workload = make_hospital_workload(wl);
  const Auditor auditor(workload.universe, PriorAssumption::kUnrestricted,
                        batch_options());

  const std::vector<std::string> queries = {workload.audit_candidates.front(),
                                            "p0 &&& oops", "p1"};
  std::vector<AuditReport> reports;
  const Status status =
      auditor.try_audit_many(workload.log, queries, &reports);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.to_string().find("p0 &&& oops"), std::string::npos)
      << status.to_string();
  EXPECT_TRUE(reports.empty()) << "out must be untouched on failure";

  const std::vector<std::string> good = {workload.audit_candidates.front()};
  ASSERT_TRUE(auditor.try_audit_many(workload.log, good, &reports).ok());
  ASSERT_EQ(reports.size(), 1u);
  expect_reports_equal(reports[0], auditor.audit(workload.log, good[0]));
}

}  // namespace
}  // namespace epi
