// Parameterized property sweeps over the worlds substrate: Boolean-algebra
// laws, transform invariances, and the lattice identities the Section 5
// machinery relies on, across a range of n.
#include <gtest/gtest.h>

#include "worlds/finite_set.h"
#include "worlds/match_vector.h"
#include "worlds/monotone.h"
#include "worlds/world_set.h"

namespace epi {
namespace {

class WorldSetLaws : public ::testing::TestWithParam<unsigned> {
 protected:
  unsigned n() const { return GetParam(); }
};

TEST_P(WorldSetLaws, DeMorgan) {
  Rng rng(100 + n());
  for (int t = 0; t < 20; ++t) {
    WorldSet a = WorldSet::random(n(), rng, 0.5);
    WorldSet b = WorldSet::random(n(), rng, 0.5);
    EXPECT_EQ(~(a | b), (~a) & (~b));
    EXPECT_EQ(~(a & b), (~a) | (~b));
  }
}

TEST_P(WorldSetLaws, DistributivityAndAbsorption) {
  Rng rng(200 + n());
  for (int t = 0; t < 20; ++t) {
    WorldSet a = WorldSet::random(n(), rng, 0.5);
    WorldSet b = WorldSet::random(n(), rng, 0.5);
    WorldSet c = WorldSet::random(n(), rng, 0.5);
    EXPECT_EQ(a & (b | c), (a & b) | (a & c));
    EXPECT_EQ(a | (b & c), (a | b) & (a | c));
    EXPECT_EQ(a & (a | b), a);
    EXPECT_EQ(a | (a & b), a);
  }
}

TEST_P(WorldSetLaws, DifferenceAndSymmetricDifference) {
  Rng rng(300 + n());
  for (int t = 0; t < 20; ++t) {
    WorldSet a = WorldSet::random(n(), rng, 0.5);
    WorldSet b = WorldSet::random(n(), rng, 0.5);
    EXPECT_EQ(a - b, a & ~b);
    EXPECT_EQ(a ^ b, (a - b) | (b - a));
    EXPECT_EQ((a ^ b).count() + 2 * (a & b).count(), a.count() + b.count());
  }
}

TEST_P(WorldSetLaws, XorMaskIsBijective) {
  Rng rng(400 + n());
  for (int t = 0; t < 10; ++t) {
    WorldSet a = WorldSet::random(n(), rng, 0.5);
    const World mask = static_cast<World>(rng.next_bits(n()));
    const WorldSet image = a.xor_with(mask);
    EXPECT_EQ(image.count(), a.count());
    EXPECT_EQ(image.xor_with(mask), a);
    // Masks distribute over set algebra.
    WorldSet b = WorldSet::random(n(), rng, 0.5);
    EXPECT_EQ((a & b).xor_with(mask), a.xor_with(mask) & b.xor_with(mask));
    EXPECT_EQ((~a).xor_with(mask), ~(a.xor_with(mask)));
  }
}

TEST_P(WorldSetLaws, XorMaskSwapsUpAndDownSets) {
  Rng rng(500 + n());
  const World full = static_cast<World>((std::uint64_t{1} << n()) - 1);
  for (int t = 0; t < 10; ++t) {
    WorldSet up = up_closure(WorldSet::random(n(), rng, 0.3));
    EXPECT_TRUE(is_downset(up.xor_with(full)));
    WorldSet down = down_closure(WorldSet::random(n(), rng, 0.3));
    EXPECT_TRUE(is_upset(down.xor_with(full)));
  }
}

TEST_P(WorldSetLaws, SetwiseMeetJoinMonotone) {
  Rng rng(600 + n());
  for (int t = 0; t < 10; ++t) {
    WorldSet a = WorldSet::random(n(), rng, 0.4);
    WorldSet b = WorldSet::random(n(), rng, 0.4);
    if (a.is_empty() || b.is_empty()) continue;
    const WorldSet meet = a.setwise_meet(b);
    const WorldSet join = a.setwise_join(b);
    // Element-wise verification is cubic; keep it to small universes.
    if (n() <= 5) {
      meet.visit([&](World m) {
        bool ok = false;
        a.visit([&](World x) {
          b.visit([&](World y) { ok |= (x & y) == m; });
        });
        EXPECT_TRUE(ok);
      });
    }
    EXPECT_LE(meet.count(), a.count() * b.count());
    EXPECT_LE(join.count(), a.count() * b.count());
  }
}

TEST_P(WorldSetLaws, CriticalCoordinatesInvariantUnderMask) {
  Rng rng(700 + n());
  for (int t = 0; t < 10; ++t) {
    WorldSet a = WorldSet::random(n(), rng, 0.5);
    const World mask = static_cast<World>(rng.next_bits(n()));
    EXPECT_EQ(critical_coordinates(a), critical_coordinates(a.xor_with(mask)));
  }
}

TEST_P(WorldSetLaws, MatchVectorSymmetryAndBoxMembership) {
  Rng rng(800 + n());
  for (int t = 0; t < 40; ++t) {
    const World u = static_cast<World>(rng.next_bits(n()));
    const World v = static_cast<World>(rng.next_bits(n()));
    const MatchVector w = match(u, v);
    EXPECT_EQ(w.key(), match(v, u).key());  // Match is symmetric
    EXPECT_TRUE(refines(u, w));
    EXPECT_TRUE(refines(v, w));
    EXPECT_EQ(w.star_count(), world_weight(u ^ v));
    // Box(w) has 2^stars members: count via TernaryTable on the universe.
    if (n() <= 8) {
      TernaryTable table = TernaryTable::box_counts(WorldSet::universe(n()));
      EXPECT_EQ(table.at(table.code_of(w)),
                static_cast<std::int64_t>(std::size_t{1} << w.star_count()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllN, WorldSetLaws, ::testing::Values(1u, 2u, 3u, 5u, 8u, 12u));

class FiniteSetLaws : public ::testing::TestWithParam<std::size_t> {
 protected:
  std::size_t m() const { return GetParam(); }
};

TEST_P(FiniteSetLaws, BooleanAlgebra) {
  Rng rng(900 + m());
  for (int t = 0; t < 15; ++t) {
    FiniteSet a = FiniteSet::random(m(), rng, 0.5);
    FiniteSet b = FiniteSet::random(m(), rng, 0.5);
    EXPECT_EQ(~(a | b), (~a) & (~b));
    EXPECT_EQ(a - b, a & ~b);
    EXPECT_EQ((a ^ b) ^ b, a);
    EXPECT_TRUE((a & b).subset_of(a));
    EXPECT_TRUE(a.subset_of(a | b));
    EXPECT_EQ(a.count() + b.count(), (a | b).count() + (a & b).count());
  }
}

TEST_P(FiniteSetLaws, ComplementRoundTrip) {
  Rng rng(1000 + m());
  FiniteSet a = FiniteSet::random(m(), rng, 0.5);
  EXPECT_EQ(~~a, a);
  EXPECT_EQ((a | ~a), FiniteSet::universe(m()));
  EXPECT_TRUE((a & ~a).is_empty());
}

INSTANTIATE_TEST_SUITE_P(Sizes, FiniteSetLaws,
                         ::testing::Values(std::size_t{1}, std::size_t{7},
                                           std::size_t{64}, std::size_t{65},
                                           std::size_t{200}));

// Both set types wrap the same dense_bits kernel, so converting between them
// must be lossless and must commute with every binary operation.
class ConversionLaws : public ::testing::TestWithParam<unsigned> {
 protected:
  unsigned n() const { return GetParam(); }
};

TEST_P(ConversionLaws, RoundTripIsLossless) {
  Rng rng(1100 + n());
  for (int t = 0; t < 20; ++t) {
    const WorldSet ws = WorldSet::random(n(), rng, 0.5);
    const FiniteSet fs = to_finite(ws);
    EXPECT_EQ(fs.universe_size(), ws.omega_size());
    EXPECT_EQ(fs.count(), ws.count());
    EXPECT_EQ(to_world_set(fs, n()), ws);
    // And the other direction, starting from a FiniteSet.
    const FiniteSet fs2 = FiniteSet::random(std::size_t{1} << n(), rng, 0.5);
    EXPECT_EQ(to_finite(to_world_set(fs2, n())), fs2);
  }
}

TEST_P(ConversionLaws, BinaryOpsCommuteWithConversion) {
  Rng rng(1200 + n());
  for (int t = 0; t < 20; ++t) {
    const WorldSet a = WorldSet::random(n(), rng, 0.5);
    const WorldSet b = WorldSet::random(n(), rng, 0.5);
    const FiniteSet fa = to_finite(a);
    const FiniteSet fb = to_finite(b);
    EXPECT_EQ(to_finite(a & b), fa & fb);
    EXPECT_EQ(to_finite(a | b), fa | fb);
    EXPECT_EQ(to_finite(a - b), fa - fb);
    EXPECT_EQ(to_finite(a ^ b), fa ^ fb);
    EXPECT_EQ(to_finite(~a), ~fa);
    // Predicates agree across the conversion too — same kernel underneath.
    EXPECT_EQ(a.subset_of(b), fa.subset_of(fb));
    EXPECT_EQ(a.disjoint_with(b), fa.disjoint_with(fb));
    EXPECT_EQ(union_is_universe(a, b), union_is_universe(fa, fb));
    EXPECT_EQ(intersection_count(a, b), intersection_count(fa, fb));
  }
}

TEST_P(ConversionLaws, ConversionRejectsNonPowerOfTwoUniverse) {
  if (n() >= 2) {
    const FiniteSet odd((std::size_t{1} << n()) - 1);
    EXPECT_THROW(to_world_set(odd, n()), std::invalid_argument);
  }
}

// The same laws across the dense / symbolic backend boundary: symbolizing is
// lossless, commutes with every operation, and mixed-backend operands agree
// with both pure-backend forms.
TEST_P(ConversionLaws, SymbolicRoundTripIsLossless) {
  Rng rng(1300 + n());
  for (int t = 0; t < 20; ++t) {
    const WorldSet ws = WorldSet::random(n(), rng, 0.5);
    const WorldSet sym = ws.symbolized();
    EXPECT_EQ(sym.backend(), SetBackend::kSymbolic);
    EXPECT_EQ(sym.count(), ws.count());
    EXPECT_EQ(sym.densified(), ws);
    EXPECT_EQ(sym, ws);  // semantic equality crosses the backend boundary
    EXPECT_EQ(sym.symbolized(), ws);  // idempotent
    // FiniteSet conversion densifies transparently.
    EXPECT_EQ(to_finite(sym), to_finite(ws));
  }
}

TEST_P(ConversionLaws, BinaryOpsCommuteWithSymbolization) {
  Rng rng(1400 + n());
  for (int t = 0; t < 15; ++t) {
    const WorldSet a = WorldSet::random(n(), rng, 0.5);
    const WorldSet b = WorldSet::random(n(), rng, 0.5);
    const WorldSet sa = a.symbolized();
    const WorldSet sb = b.symbolized();
    EXPECT_EQ((sa & sb).densified(), a & b);
    EXPECT_EQ((sa | sb).densified(), a | b);
    EXPECT_EQ((sa - sb).densified(), a - b);
    EXPECT_EQ((sa ^ sb).densified(), a ^ b);
    EXPECT_EQ((~sa).densified(), ~a);
    // Mixed-backend operands produce the same set (symbolically).
    EXPECT_EQ(a & sb, a & b);
    EXPECT_TRUE((sa | b).symbolic());
    EXPECT_EQ(sa | b, a | b);
    // Predicates and fused kernels agree across backends.
    EXPECT_EQ(sa.subset_of(sb), a.subset_of(b));
    EXPECT_EQ(sa.disjoint_with(b), a.disjoint_with(b));
    EXPECT_EQ(union_is_universe(sa, sb), union_is_universe(a, b));
    EXPECT_EQ(intersection_subset_of(sa, sb, sa),
              intersection_subset_of(a, b, a));
    EXPECT_EQ(intersection_count(sa, sb), intersection_count(a, b));
    EXPECT_EQ(intersection3_empty(sa, sb, ~sa),
              intersection3_empty(a, b, ~a));
  }
}

TEST_P(ConversionLaws, SymbolicRoundTripAtCorners) {
  const World last = static_cast<World>((std::uint64_t{1} << n()) - 1);
  const std::vector<WorldSet> corners = {
      WorldSet::empty(n()),
      WorldSet::universe(n()),
      WorldSet::singleton(n(), last),
      ~WorldSet::singleton(n(), 0),
  };
  for (const WorldSet& ws : corners) {
    EXPECT_EQ(ws.symbolized().densified(), ws);
    EXPECT_EQ(ws.symbolized().is_empty(), ws.is_empty());
    EXPECT_EQ(ws.symbolized().is_universe(), ws.is_universe());
  }
}

INSTANTIATE_TEST_SUITE_P(AllN, ConversionLaws,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 10u));

}  // namespace
}  // namespace epi
