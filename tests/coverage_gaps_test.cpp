// Targeted tests for paths not exercised elsewhere: the log-submodular
// algebraic family, auditor option gates, report tags, and small utility
// edges.
#include <gtest/gtest.h>

#include "core/auditor.h"
#include "core/report.h"
#include "optimize/emptiness.h"
#include "probabilistic/modularity.h"
#include "util/rng.h"

namespace epi {
namespace {

TEST(SubmodularFamily, ConstraintsMatchChecker) {
  const unsigned n = 3;
  const AlgebraicFamily family = submodular_family_in_weights(n);
  EXPECT_EQ(family.name, "log-submodular");
  Rng rng(3);
  for (int t = 0; t < 15; ++t) {
    const Distribution d = random_log_submodular(n, rng);
    for (const Polynomial& alpha : family.inequalities) {
      EXPECT_GE(alpha.eval(d.weights()), -1e-9);
    }
    // A log-supermodular (strictly coupled) distribution violates some
    // submodular constraint.
  }
  int violations = 0;
  for (int t = 0; t < 15; ++t) {
    const Distribution d = random_log_supermodular(n, rng, 1.0, 3.0);
    for (const Polynomial& alpha : family.inequalities) {
      if (alpha.eval(d.weights()) < -1e-9) {
        ++violations;
        break;
      }
    }
  }
  EXPECT_GT(violations, 5);
}

TEST(ProductFamilyInWeights, ExactlyProductDistributions) {
  const unsigned n = 2;
  const AlgebraicFamily family = product_family_in_weights(n);
  Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    const Distribution product = ProductDistribution::random(n, rng).to_distribution();
    for (const Polynomial& alpha : family.inequalities) {
      EXPECT_GE(alpha.eval(product.weights()), -1e-9);
    }
  }
  // A genuinely correlated distribution fails.
  Distribution correlated(2, {0.5, 0.0, 0.0, 0.5});
  bool violated = false;
  for (const Polynomial& alpha : family.inequalities) {
    violated |= alpha.eval(correlated.weights()) < -1e-9;
  }
  EXPECT_TRUE(violated);
}

TEST(Auditor, MaxSosRecordsGateSkipsSdp) {
  // With the universe above max_sos_records the SOS stage is skipped even
  // when enabled; verdicts must still be sound, only potentially
  // uncertified safe.
  RecordUniverse u;
  u.add("a");
  u.add("b");
  u.add("c");
  AuditorOptions options;
  options.enable_sos = true;
  options.max_sos_records = 2;
  Auditor auditor(u, PriorAssumption::kProduct, options);
  Rng rng(7);
  for (int t = 0; t < 20; ++t) {
    WorldSet a = WorldSet::random(3, rng, 0.5);
    WorldSet b = WorldSet::random(3, rng, 0.5);
    const AuditFinding f = auditor.audit_sets(a, b);
    EXPECT_NE(f.method, "sos-certificate");
  }
}

TEST(Auditor, RejectsContradictorySosOptions) {
  // enable_sos with max_sos_records == 0 gates SOS off for every universe —
  // validate() names the contradiction instead of silently honoring it.
  RecordUniverse u;
  u.add("a");
  AuditorOptions options;
  options.enable_sos = true;
  options.max_sos_records = 0;
  EXPECT_FALSE(options.validate().ok());
  EXPECT_THROW(Auditor(u, PriorAssumption::kProduct, options),
               std::invalid_argument);
}

TEST(Report, NumericTagShownForUncertifiedVerdicts) {
  AuditReport report;
  report.audit_query = "q";
  report.prior = PriorAssumption::kProduct;
  AuditFinding f;
  f.user = "u";
  f.query_text = "q";
  f.verdict = Verdict::kSafe;
  f.method = "numeric-only";
  f.certified = false;
  report.per_disclosure.push_back(f);
  const std::string text = format_report(report);
  EXPECT_NE(text.find("numeric"), std::string::npos);
  EXPECT_EQ(text.find("certifiednumeric"), std::string::npos);
}

TEST(Rng, NextBelowOne) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(EmptinessOptions, GapThresholdRespected) {
  // With an absurd gap threshold nothing is ever "found".
  const unsigned n = 2;
  WorldSet a(n, {3});
  EmptinessOptions opts;
  opts.gap_threshold = 10.0;  // impossible
  const auto r = search_violating_distribution(unconstrained_family_in_weights(n),
                                               a, a, opts);
  EXPECT_FALSE(r.found);
  EXPECT_FALSE(r.witness.has_value());
  EXPECT_FALSE(r.best_iterate.empty());
}

}  // namespace
}  // namespace epi
