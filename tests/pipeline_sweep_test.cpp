// Parameterized cross-validation sweep: the staged combinatorial pipeline,
// the numeric optimizer and (at n <= 3) dense-grid ground truth must agree
// across dimensions and set densities. This is the suite that would catch a
// soundness regression in any single criterion.
#include <gtest/gtest.h>

#include "criteria/pipeline.h"
#include "optimize/coordinate_ascent.h"
#include "probabilistic/modularity.h"

namespace epi {
namespace {

struct SweepParam {
  unsigned n;
  double density;
};

PipelineResult unrestricted_verdict(const WorldSet& a, const WorldSet& b) {
  return run_criteria(unrestricted_criteria(), a, b, "unreachable");
}

PipelineResult product_verdict(const WorldSet& a, const WorldSet& b) {
  return run_criteria(product_criteria(), a, b,
                      "exhausted-combinatorial-criteria");
}

PipelineResult supermodular_verdict(const WorldSet& a, const WorldSet& b) {
  return run_criteria(supermodular_criteria(), a, b,
                      "exhausted-supermodular-criteria");
}

class PipelineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PipelineSweep, ProductPipelineNeverContradictsOptimizer) {
  const auto [n, density] = GetParam();
  Rng rng(1000 + n * 31 + static_cast<unsigned>(density * 100));
  int definite = 0;
  for (int t = 0; t < 60; ++t) {
    WorldSet a = WorldSet::random(n, rng, density);
    WorldSet b = WorldSet::random(n, rng, density);
    const PipelineResult pipeline = product_verdict(a, b);
    if (pipeline.verdict == Verdict::kUnknown) continue;
    ++definite;
    AscentOptions opts;
    opts.seed = 5000 + t;
    const double gap = maximize_product_gap(a, b, opts).max_gap;
    if (pipeline.verdict == Verdict::kSafe) {
      EXPECT_LE(gap, 1e-9) << "criterion=" << pipeline.criterion
                           << " A=" << a.to_string() << " B=" << b.to_string();
    } else {
      ASSERT_TRUE(pipeline.witness_product.has_value());
      EXPECT_GT(pipeline.witness_product->safety_gap(a, b), 0.0)
          << "criterion=" << pipeline.criterion;
    }
  }
  EXPECT_GT(definite, 10);
}

TEST_P(PipelineSweep, SupermodularVerdictsConsistentWithSampledIsingPriors) {
  const auto [n, density] = GetParam();
  Rng rng(2000 + n * 37 + static_cast<unsigned>(density * 100));
  for (int t = 0; t < 40; ++t) {
    WorldSet a = WorldSet::random(n, rng, density);
    WorldSet b = WorldSet::random(n, rng, density);
    const PipelineResult r = supermodular_verdict(a, b);
    if (r.verdict != Verdict::kSafe) continue;
    for (int i = 0; i < 8; ++i) {
      EXPECT_LE(random_log_supermodular(n, rng).safety_gap(a, b), 1e-9)
          << "criterion=" << r.criterion;
    }
  }
}

TEST_P(PipelineSweep, UnsafeVerdictsAgreeAcrossFamilies) {
  // Family inclusion Pi_m0 ⊆ Pi_m+ ⊆ all: unsafe-for-smaller implies
  // unsafe-for-larger can NOT be asserted (inclusion points the other way);
  // what must hold: safe under a LARGER family forces safe under smaller.
  const auto [n, density] = GetParam();
  Rng rng(3000 + n * 41 + static_cast<unsigned>(density * 100));
  for (int t = 0; t < 60; ++t) {
    WorldSet a = WorldSet::random(n, rng, density);
    WorldSet b = WorldSet::random(n, rng, density);
    if (unrestricted_verdict(a, b).verdict == Verdict::kSafe) {
      EXPECT_NE(supermodular_verdict(a, b).verdict, Verdict::kUnsafe);
      EXPECT_NE(product_verdict(a, b).verdict, Verdict::kUnsafe);
    }
    if (supermodular_verdict(a, b).verdict == Verdict::kSafe) {
      EXPECT_NE(product_verdict(a, b).verdict, Verdict::kUnsafe)
          << " A=" << a.to_string() << " B=" << b.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineSweep,
    ::testing::Values(SweepParam{2, 0.5}, SweepParam{3, 0.3}, SweepParam{3, 0.5},
                      SweepParam{4, 0.2}, SweepParam{4, 0.5}, SweepParam{5, 0.4}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "n" + std::to_string(info.param.n) + "_d" +
             std::to_string(static_cast<int>(info.param.density * 100));
    });

}  // namespace
}  // namespace epi
