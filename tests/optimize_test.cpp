#include <gtest/gtest.h>

#include <cmath>

#include "criteria/pipeline.h"
#include "optimize/coordinate_ascent.h"
#include "optimize/emptiness.h"
#include "probabilistic/modularity.h"
#include "probabilistic/safe.h"

namespace epi {
namespace {

double max_gap_grid(const WorldSet& a, const WorldSet& b, int steps = 24) {
  const unsigned n = a.n();
  std::vector<double> p(n, 0.0);
  double best = -1.0;
  std::size_t total = 1;
  for (unsigned i = 0; i < n; ++i) total *= steps + 1;
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t c = code;
    for (unsigned i = 0; i < n; ++i) {
      p[i] = static_cast<double>(c % (steps + 1)) / steps;
      c /= steps + 1;
    }
    best = std::max(best, ProductDistribution(p).safety_gap(a, b));
  }
  return best;
}

TEST(CoordinateAscent, MatchesGridGroundTruth) {
  Rng rng(61);
  const unsigned n = 3;
  for (int trial = 0; trial < 40; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    const double grid = max_gap_grid(a, b);
    AscentOptions opts;
    opts.seed = 1000 + trial;
    const AscentResult r = maximize_product_gap(a, b, opts);
    // Ascent must match or beat the grid (grid is a lower bound on the max).
    EXPECT_GE(r.max_gap, grid - 1e-6)
        << "A=" << a.to_string() << " B=" << b.to_string();
    // And its claimed maximum must be attained by its own witness.
    EXPECT_NEAR(ProductDistribution(r.argmax).safety_gap(a, b), r.max_gap, 1e-12);
  }
}

TEST(CoordinateAscent, ZeroGapForIndependentPair) {
  const unsigned n = 4;
  WorldSet a(n), b(n);
  for (World w = 0; w < 16; ++w) {
    if (world_bit(w, 0)) a.insert(w);
    if (world_bit(w, 2)) b.insert(w);
  }
  const AscentResult r = maximize_product_gap(a, b);
  EXPECT_NEAR(r.max_gap, 0.0, 1e-9);
}

TEST(CoordinateAscent, NumericDecisionSound) {
  Rng rng(67);
  const unsigned n = 3;
  for (int trial = 0; trial < 40; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    const NumericDecision d = decide_product_safety_numeric(a, b);
    const double grid = max_gap_grid(a, b);
    if (d.verdict == Verdict::kSafe) {
      EXPECT_LE(grid, 1e-6);
    } else {
      ASSERT_FALSE(d.witness_params.empty());
      EXPECT_GT(ProductDistribution(d.witness_params).safety_gap(a, b), 0.0);
    }
  }
}

TEST(CoordinateAscent, AgreesWithCombinatorialPipeline) {
  // Where the criteria pipeline is definite, the optimizer must agree.
  Rng rng(71);
  const unsigned n = 4;
  for (int trial = 0; trial < 60; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.4);
    WorldSet b = WorldSet::random(n, rng, 0.4);
    const PipelineResult pipeline = run_criteria(
        product_criteria(), a, b, "exhausted-combinatorial-criteria");
    if (pipeline.verdict == Verdict::kUnknown) continue;
    const NumericDecision numeric = decide_product_safety_numeric(a, b);
    EXPECT_EQ(numeric.verdict, pipeline.verdict)
        << "criterion=" << pipeline.criterion << " gap=" << numeric.max_gap
        << " A=" << a.to_string() << " B=" << b.to_string();
  }
}

TEST(SimplexProjection, BasicProperties) {
  auto p = project_to_simplex({0.5, 0.5, 2.0});
  double sum = 0.0;
  for (double x : p) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // A point already on the simplex is fixed.
  auto q = project_to_simplex({0.2, 0.3, 0.5});
  EXPECT_NEAR(q[0], 0.2, 1e-12);
  EXPECT_NEAR(q[1], 0.3, 1e-12);
  EXPECT_NEAR(q[2], 0.5, 1e-12);
  // Heavily negative coordinates clamp to zero.
  auto r = project_to_simplex({-5.0, 1.0, 1.0});
  EXPECT_NEAR(r[0], 0.0, 1e-12);
  EXPECT_NEAR(r[1] + r[2], 1.0, 1e-12);
}

TEST(Emptiness, UnconstrainedMatchesTheorem311) {
  Rng rng(73);
  const unsigned n = 3;
  const AlgebraicFamily family = unconstrained_family_in_weights(n);
  int unsafe_seen = 0;
  for (int trial = 0; trial < 25; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    EmptinessOptions opts;
    opts.seed = 4000 + trial;
    const EmptinessSearchResult r = search_violating_distribution(family, a, b, opts);
    if (safe_unrestricted_prob(a, b)) {
      EXPECT_FALSE(r.found) << "A=" << a.to_string() << " B=" << b.to_string();
    } else {
      // Theorem 3.11 unsafe: the search should find a witness.
      EXPECT_TRUE(r.found) << "A=" << a.to_string() << " B=" << b.to_string();
      if (r.found) {
        ++unsafe_seen;
        EXPECT_GT(r.witness->safety_gap(a, b), 0.0);
      }
    }
  }
  EXPECT_GT(unsafe_seen, 5);
}

TEST(Emptiness, SupermodularWitnessesAreSupermodularAndViolating) {
  Rng rng(79);
  const unsigned n = 3;
  const AlgebraicFamily family = supermodular_family_in_weights(n);
  int found = 0;
  for (int trial = 0; trial < 15 && found < 5; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    EmptinessOptions opts;
    opts.seed = 5000 + trial;
    const EmptinessSearchResult r = search_violating_distribution(family, a, b, opts);
    if (!r.found) continue;
    ++found;
    EXPECT_GT(r.witness->safety_gap(a, b), 0.0);
    // Feasibility tolerance allows slight constraint slack.
    EXPECT_TRUE(is_log_supermodular(*r.witness, 1e-4));
  }
  EXPECT_GT(found, 0);
}

TEST(FullDecision, SoundAgainstGrid) {
  Rng rng(83);
  const unsigned n = 3;
  int certified = 0;
  for (int trial = 0; trial < 25; ++trial) {
    WorldSet a = WorldSet::random(n, rng, 0.5);
    WorldSet b = WorldSet::random(n, rng, 0.5);
    // Skip the SOS stage here to keep the test fast; certificates are
    // exercised separately in sos_test.cpp.
    const FullDecision d =
        decide_product_safety_complete(a, b, AscentOptions{}, /*enable_sos=*/false);
    const double grid = max_gap_grid(a, b);
    if (d.verdict == Verdict::kSafe) {
      EXPECT_LE(grid, 1e-6) << "method=" << d.method;
    } else {
      ASSERT_TRUE(d.witness.has_value());
      EXPECT_GT(d.witness->safety_gap(a, b), 0.0);
    }
    certified += d.certified;
  }
  EXPECT_GT(certified, 10);
}

}  // namespace
}  // namespace epi
