#include <gtest/gtest.h>

#include <set>

#include "util/rational.h"
#include "util/rng.h"
#include "util/status.h"

namespace epi {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesGcdAndSign) {
  Rational r(6, -8);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
  EXPECT_TRUE(r.is_negative());
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
}

TEST(Rational, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, CompoundAssignment) {
  Rational a(1, 4);
  a += Rational(1, 4);
  EXPECT_EQ(a, Rational(1, 2));
  a *= Rational(2);
  EXPECT_EQ(a, Rational(1));
  a -= Rational(3, 2);
  EXPECT_EQ(a, Rational(-1, 2));
  a /= Rational(-1, 2);
  EXPECT_EQ(a, Rational(1));
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-3, 2).to_double(), -1.5);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3, 7).to_string(), "3/7");
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(-1, 2).to_string(), "-1/2");
}

TEST(Rational, ReciprocalOfZeroThrows) {
  EXPECT_THROW(Rational(0).reciprocal(), std::domain_error);
}

TEST(Rational, OverflowDetected) {
  Rational huge(std::int64_t{1} << 62);
  EXPECT_THROW(huge * huge, RationalOverflow);
  EXPECT_THROW(huge + huge, RationalOverflow);
}

TEST(Rational, CrossReductionAvoidsSpuriousOverflow) {
  // (2^40 / 3) * (3 / 2^40) should be exactly 1 without overflowing.
  Rational a(std::int64_t{1} << 40, 3);
  Rational b(3, std::int64_t{1} << 40);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(Rational, AbsAndPredicates) {
  EXPECT_EQ(Rational(-2, 3).abs(), Rational(2, 3));
  EXPECT_TRUE(Rational(4, 2).is_integer());
  EXPECT_FALSE(Rational(1, 2).is_integer());
  EXPECT_TRUE(Rational(1, 9).is_positive());
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBitsMasked) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.next_bits(5), 32u);
  }
  EXPECT_EQ(rng.next_bits(0), 0u);
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(13);
  auto p = rng.permutation(20);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 19u);
}

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().to_string(), "OK");
  auto s = Status::InvalidArgument("bad n");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.to_string(), "InvalidArgument: bad n");
  EXPECT_EQ(Status::Inconclusive("budget").code(), Status::Code::kInconclusive);
}

}  // namespace
}  // namespace epi
