#!/bin/sh
# End-to-end smoke test for the audit service (registered as CTest
# `service_smoke_unix` / `service_smoke_tcp`): boots audit_server on the
# requested transport, fans out 8 concurrent clients x 100 requests each,
# and checks that
#   1. every client observes byte-identical verdict sequences,
#   2. the verdicts (per-disclosure and cumulative) are byte-identical to the
#      offline auditor's report for the same log (Prop. 3.10 parity),
#   3. the repeated workload warms the verdict cache (hit count > 0),
#   4. the server shuts down gracefully on the wire `shutdown` op (exit 0).
# Usage: service_smoke.sh <audit_server> <audit_client> <audit_cli> [unix|tcp]
set -u

server="${1:?usage: service_smoke.sh <audit_server> <audit_client> <audit_cli> [unix|tcp]}"
client="${2:?missing audit_client path}"
cli="${3:?missing audit_cli path}"
transport="${4:-unix}"
case "$transport" in unix|tcp) ;; *)
  echo "FAIL: transport must be unix or tcp, got '$transport'" >&2; exit 1 ;;
esac

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2> /dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  [ -f "$tmp/server.err" ] && sed 's/^/  server: /' "$tmp/server.err" >&2
  exit 1
}

sock="$tmp/audit.sock"

# No database changes between queries, so the server's (final-state) answers
# equal the logged ones; the clients replay the logged answers regardless.
cat > "$tmp/scenario.scn" <<'EOF'
record bob_hiv
record bob_transfusion
record bob_hepatitis
insert bob_transfusion
insert bob_hiv
query smoke bob_hiv
query smoke bob_hiv -> bob_transfusion
query smoke bob_hiv & bob_hepatitis
query smoke atmost(0, bob_hepatitis)
query smoke bob_transfusion
prior product
audit bob_hiv
EOF

# Offline ground truth.
"$cli" "$tmp/scenario.scn" > "$tmp/offline.txt" 2> "$tmp/offline.err" \
  || fail "offline audit_cli run failed"

# Replay workload from the logged answers: `query<TAB>answer` per line.
sed -n 's/^\[log\] smoke: \(.*\) -> \(true\)$/\1\t\2/p;s/^\[log\] smoke: \(.*\) -> \(false\)$/\1\t\2/p' \
  "$tmp/offline.txt" > "$tmp/workload.tsv"
[ "$(wc -l < "$tmp/workload.tsv")" -eq 5 ] || fail "expected 5 logged queries"

# Offline finding rows: `section<TAB>answer<TAB>verdict<TAB>method` (section 1
# = per-disclosure in log order, 2 = per-user cumulative).
awk '
  /^Per disclosure:/ { section = 1; next }
  /^Per user/        { section = 2; next }
  /witness:/         { next }
  section && / = (true|false) / {
    for (i = 1; i <= NF; i++) if ($i == "=") {
      print section "\t" $(i + 1) "\t" $(i + 2) "\t" $(i + 3)
      break
    }
  }' "$tmp/offline.txt" > "$tmp/offline_rows.tsv"
[ "$(grep -c '^1	' "$tmp/offline_rows.tsv")" -eq 5 ] \
  || fail "expected 5 offline per-disclosure rows"
[ "$(grep -c '^2	' "$tmp/offline_rows.tsv")" -eq 1 ] \
  || fail "expected 1 offline cumulative row"

# unix binds a socket in $tmp; tcp binds port 0 and the resolved port is
# scraped from the server's "listening on tcp:..." startup line.
if [ "$transport" = unix ]; then
  listen="unix:$sock"
else
  listen="tcp:127.0.0.1:0"
fi
"$server" --listen "$listen" --scenario "$tmp/scenario.scn" \
  > "$tmp/server.out" 2> "$tmp/server.err" &
server_pid=$!

i=0
while ! grep -q "listening on" "$tmp/server.out" 2> /dev/null; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && fail "server never reported its listener"
  kill -0 "$server_pid" 2> /dev/null || fail "server died during startup"
  sleep 0.1
done
if [ "$transport" = unix ]; then
  [ -S "$sock" ] || fail "server socket never appeared"
  connect="unix:$sock"
else
  connect="$(sed -n 's/^audit_server: listening on \(tcp:.*\)$/\1/p' \
    "$tmp/server.out" | head -n 1)"
  [ -n "$connect" ] || fail "could not scrape the resolved tcp port"
fi

# 8 concurrent clients, 5 queries x 20 rounds = 100 requests each. Each
# client owns one user so its cumulative sequence is self-contained.
n=1
while [ "$n" -le 8 ]; do
  (
    awk -v u="user$n" -F'\t' '{ print u "\t" $1 "\t" $2 }' "$tmp/workload.tsv" \
      > "$tmp/workload.$n.tsv"
    "$client" --connect "$connect" --query-file "$tmp/workload.$n.tsv" --repeat 20 \
      > "$tmp/client.$n.out" 2> "$tmp/client.$n.err"
    echo $? > "$tmp/client.$n.rc"
  ) &
  n=$((n + 1))
done
n=1
while [ "$n" -le 8 ]; do
  while [ ! -f "$tmp/client.$n.rc" ]; do sleep 0.1; done
  [ "$(cat "$tmp/client.$n.rc")" -eq 0 ] \
    || fail "client $n exited nonzero: $(cat "$tmp/client.$n.err")"
  [ "$(wc -l < "$tmp/client.$n.out")" -eq 100 ] \
    || fail "client $n produced $(wc -l < "$tmp/client.$n.out") lines, wanted 100"
  n=$((n + 1))
done

# (1) Byte-identical verdicts across all 8 clients. The user column and the
# cached/engine column are stripped first: which client warms the cache (and
# which one hits it) depends on arrival order, but the verdicts served must
# not.
n=1
while [ "$n" -le 8 ]; do
  cut -f2-5,7- "$tmp/client.$n.out" > "$tmp/norm.$n"
  n=$((n + 1))
done
n=2
while [ "$n" -le 8 ]; do
  diff -u "$tmp/norm.1" "$tmp/norm.$n" > /dev/null \
    || fail "client $n verdicts differ from client 1"
  n=$((n + 1))
done

# (2) Parity with the offline auditor. Raw client columns: user(1) query(2)
# answer(3) verdict(4) method(5) cached(6) cum_verdict(7) cum_method(8)
# sequence(9).
k=1
while [ "$k" -le 5 ]; do
  offline_row="$(grep '^1	' "$tmp/offline_rows.tsv" | sed -n "${k}p")"
  want_answer="$(printf '%s' "$offline_row" | cut -f2)"
  want_verdict="$(printf '%s' "$offline_row" | cut -f3)"
  want_method="$(printf '%s' "$offline_row" | cut -f4)"
  line="$(sed -n "${k}p" "$tmp/client.1.out")"
  got_answer="$(printf '%s' "$line" | cut -f3)"
  got_verdict="$(printf '%s' "$line" | cut -f4)"
  got_method="$(printf '%s' "$line" | cut -f5)"
  [ "$got_answer" = "$want_answer" ] \
    || fail "disclosure $k answer: got '$got_answer', offline '$want_answer'"
  [ "$got_verdict" = "$want_verdict" ] \
    || fail "disclosure $k verdict: got '$got_verdict', offline '$want_verdict'"
  [ "$got_method" = "$want_method" ] \
    || fail "disclosure $k method: got '$got_method', offline '$want_method'"
  k=$((k + 1))
done
cumulative_row="$(grep '^2	' "$tmp/offline_rows.tsv")"
want_verdict="$(printf '%s' "$cumulative_row" | cut -f3)"
want_method="$(printf '%s' "$cumulative_row" | cut -f4)"
line5="$(sed -n '5p' "$tmp/client.1.out")"
got_verdict="$(printf '%s' "$line5" | cut -f7)"
got_method="$(printf '%s' "$line5" | cut -f8)"
[ "$got_verdict" = "$want_verdict" ] \
  || fail "cumulative verdict: got '$got_verdict', offline '$want_verdict'"
[ "$got_method" = "$want_method" ] \
  || fail "cumulative method: got '$got_method', offline '$want_method'"

# (3) The repeat workload must have warmed the verdict cache.
"$client" --connect "$connect" --op metrics > "$tmp/metrics.json" \
  || fail "metrics request failed"
hits="$(sed -n 's/.*"service\.cache\.hits": \([0-9][0-9]*\).*/\1/p' "$tmp/metrics.json")"
[ -n "$hits" ] || fail "service.cache.hits not found in metrics"
[ "$hits" -gt 0 ] || fail "verdict cache saw no hits on a repeat workload"

# (4) Graceful shutdown over the wire; the server drains and exits 0.
"$client" --connect "$connect" --op shutdown > /dev/null || fail "shutdown op failed"
i=0
while kill -0 "$server_pid" 2> /dev/null; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && fail "server did not exit after shutdown op"
  sleep 0.1
done
grep -q "drained and stopped" "$tmp/server.err" \
  || fail "server did not report a graceful drain"
server_pid=""

echo "service smoke OK over $transport (cache hits: $hits)"
