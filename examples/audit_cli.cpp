// A command-line offline auditor: replays a scenario script (records,
// database changes, logged queries) and prints the audit reports — the shape
// of tool a DBA would run after a suspected leak. The script language is
// documented in core/scenario.h.
//
// Usage: audit_cli [scenario-file]
// Without arguments a built-in demonstration scenario is used.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/report.h"
#include "core/scenario.h"

namespace {

const char kDemoScenario[] = R"(# Built-in demonstration scenario
record bob_hiv
record bob_transfusion
record bob_hepatitis
insert bob_transfusion
query alice @2005-03-02 bob_hiv
query cindy @2005-07-15 bob_hiv & bob_hepatitis
insert bob_hiv
query mallory @2007-02-20 bob_hiv
query dave @2007-03-01 bob_hiv -> bob_transfusion
query erin @2007-04-12 atmost(0, bob_hepatitis)
prior product
audit bob_hiv
prior subcube-knowledge
audit bob_hiv
)";

int run(std::istream& in) {
  using namespace epi;
  try {
    const ScenarioResult result = run_scenario(in);
    for (const std::string& line : result.query_trace) {
      std::printf("[log] %s\n", line.c_str());
    }
    for (const AuditReport& report : result.reports) {
      std::printf("\n%s", format_report(report).c_str());
    }
    if (result.reports.empty()) {
      std::printf("(scenario contained no `audit` directive)\n");
    }
    return 0;
  } catch (const ScenarioError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open scenario file '%s'\n", argv[1]);
      return 1;
    }
    return run(file);
  }
  std::printf("(no scenario file given; running the built-in demonstration)\n\n");
  std::istringstream demo{std::string(kDemoScenario)};
  return run(demo);
}
