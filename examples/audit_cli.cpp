// A command-line offline auditor: replays a scenario script (records,
// database changes, logged queries) and prints the audit reports — the shape
// of tool a DBA would run after a suspected leak. The script language is
// documented in core/scenario.h.
//
// Usage: audit_cli [--stats] [--metrics] [--batch] [--trace=<file.json>]
//                  [--threads N] [--backend=dense|symbolic|auto] [scenario-file]
//   --stats            after each report, print per-stage decision counters
//                      and wall time (the DecisionEngine's instrumentation)
//   --batch            group consecutive `audit` directives into one
//                      Auditor::audit_many sweep (same reports, byte for
//                      byte; disclosure compilation amortized across them)
//   --metrics          after each report, print its full metrics snapshot,
//                      then the process-wide registry (parser, oracle, pool)
//   --trace=<file>     record a span trace of the whole run and write it as
//                      JSON to <file> ("-" writes to stdout)
//   --threads N        decide disclosures on N worker threads (0 = one per
//                      core); reports are byte-identical for every value
//   --backend=B        compiled-set representation: dense bitsets, symbolic
//                      subcube covers, or auto (default: dense up to 26
//                      records, symbolic above — the only way past 2^26
//                      bits per set)
// Without a scenario file a built-in demonstration scenario is used.
//
// Errors are routed through epi::Status — no uncaught throws — and the exit
// code tells scripts what went wrong (tests/audit_cli_exitcodes.sh pins it):
//   0  success (including --help)
//   1  runtime failure: unreadable scenario file, malformed scenario, ...
//   2  command-line errors: unknown flag, missing flag value
// Flag errors print the usage block on stderr; --help prints it on stdout.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/report.h"
#include "core/scenario.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/status.h"

namespace {

const char kDemoScenario[] = R"(# Built-in demonstration scenario
record bob_hiv
record bob_transfusion
record bob_hepatitis
insert bob_transfusion
query alice @2005-03-02 bob_hiv
query cindy @2005-07-15 bob_hiv & bob_hepatitis
insert bob_hiv
query mallory @2007-02-20 bob_hiv
query dave @2007-03-01 bob_hiv -> bob_transfusion
query erin @2007-04-12 atmost(0, bob_hepatitis)
prior product
audit bob_hiv
prior subcube-knowledge
audit bob_hiv
)";

constexpr char kUsage[] =
    "usage: audit_cli [--stats] [--metrics] [--batch] [--trace=<file.json>]\n"
    "                 [--threads N] [scenario-file]\n"
    "  --stats          print per-stage decision counters after each report\n"
    "  --metrics        print each report's metrics snapshot, then the\n"
    "                   process-wide registry\n"
    "  --batch          run consecutive audit directives as one batch\n"
    "                   (identical reports, amortized disclosure compilation)\n"
    "  --trace=<file>   write a JSON span trace of the run ('-' = stdout)\n"
    "  --threads N      decide disclosures on N threads (0 = one per core)\n"
    "  --backend=B      world-set representation: dense, symbolic or auto\n"
    "                   (auto = dense up to 26 records, symbolic above)\n"
    "Without a scenario file the built-in demonstration scenario runs.\n";

struct CliOptions {
  bool stats = false;
  bool metrics = false;
  bool help = false;
  const char* trace_path = nullptr;
  epi::ScenarioOptions scenario;
  const char* scenario_path = nullptr;
};

epi::Status write_trace(const epi::obs::Trace& trace, const char* path) {
  const std::string json = epi::obs::trace_to_json(trace);
  if (std::strcmp(path, "-") == 0) {
    std::printf("%s\n", json.c_str());
    return epi::Status::Ok();
  }
  std::ofstream out(path);
  if (!out) {
    return epi::Status::InvalidArgument(std::string("cannot open trace file '") +
                                        path + "'");
  }
  out << json << "\n";
  if (!out) {
    return epi::Status::Internal(std::string("failed writing trace to '") +
                                 path + "'");
  }
  return epi::Status::Ok();
}

epi::Status run(std::istream& in, const CliOptions& cli) {
  using namespace epi;
  std::shared_ptr<obs::Trace> trace;
  if (cli.trace_path != nullptr) {
    trace = std::make_shared<obs::Trace>();
    obs::install_trace(trace);
  }

  ScenarioResult result;
  const Status status = try_run_scenario(in, &result, cli.scenario);
  if (trace) obs::install_trace(nullptr);
  if (!status.ok()) return status;

  for (const std::string& line : result.query_trace) {
    std::printf("[log] %s\n", line.c_str());
  }
  for (const AuditReport& report : result.reports) {
    std::printf("\n%s", format_report(report).c_str());
    if (cli.stats) {
      std::printf("\n%s", format_stage_stats(report).c_str());
    }
    if (cli.metrics) {
      std::printf("\n%s", format_metrics(report).c_str());
    }
  }
  if (result.reports.empty()) {
    std::printf("(scenario contained no `audit` directive)\n");
  }
  if (cli.metrics) {
    std::printf("\nProcess metrics (parser, oracle, pool):\n%s",
                obs::metrics_to_text(obs::process_metrics().snapshot()).c_str());
  }
  if (trace) {
    if (const Status ws = write_trace(*trace, cli.trace_path); !ws.ok()) {
      return ws;
    }
    if (std::strcmp(cli.trace_path, "-") != 0) {
      std::printf("\n[trace] %zu spans -> %s\n", trace->size(), cli.trace_path);
    }
  }
  return Status::Ok();
}

epi::Status parse_args(int argc, char** argv, CliOptions* cli) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      cli->help = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      cli->stats = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      cli->metrics = true;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      cli->scenario.batch_audits = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      if (argv[i][8] == '\0') {
        return epi::Status::InvalidArgument("--trace needs a file name");
      }
      cli->trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        return epi::Status::InvalidArgument("--threads needs a count");
      }
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 0) {
        return epi::Status::InvalidArgument("--threads must be >= 0");
      }
      cli->scenario.auditor.threads = static_cast<unsigned>(n);
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      try {
        cli->scenario.auditor.backend = epi::parse_backend(argv[i] + 10);
      } catch (const std::invalid_argument& e) {
        return epi::Status::InvalidArgument(e.what());
      }
    } else if (argv[i][0] == '-') {
      return epi::Status::InvalidArgument(std::string("unknown flag '") +
                                          argv[i] + "'");
    } else {
      cli->scenario_path = argv[i];
    }
  }
  return epi::Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (const epi::Status s = parse_args(argc, argv, &cli); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.to_string().c_str(), kUsage);
    return 2;
  }
  if (cli.help) {
    std::printf("%s", kUsage);
    return 0;
  }
  epi::Status status = epi::Status::Ok();
  try {
    if (cli.scenario_path != nullptr) {
      std::ifstream file(cli.scenario_path);
      if (!file) {
        status = epi::Status::InvalidArgument(
            std::string("cannot open scenario file '") + cli.scenario_path +
            "'");
      } else {
        status = run(file, cli);
      }
    } else {
      std::printf("(no scenario file given; running the built-in demonstration)\n\n");
      std::istringstream demo{std::string(kDemoScenario)};
      status = run(demo, cli);
    }
  } catch (const std::exception& e) {
    status = epi::Status::Internal(e.what());
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    return 1;
  }
  return 0;
}
