// A command-line offline auditor: replays a scenario script (records,
// database changes, logged queries) and prints the audit reports — the shape
// of tool a DBA would run after a suspected leak. The script language is
// documented in core/scenario.h.
//
// Usage: audit_cli [--stats] [--threads N] [scenario-file]
//   --stats      after each report, print per-stage decision counters and
//                wall time (the DecisionEngine's instrumentation)
//   --threads N  decide disclosures on N worker threads (0 = one per core);
//                reports are byte-identical for every value
// Without a scenario file a built-in demonstration scenario is used.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/report.h"
#include "core/scenario.h"

namespace {

const char kDemoScenario[] = R"(# Built-in demonstration scenario
record bob_hiv
record bob_transfusion
record bob_hepatitis
insert bob_transfusion
query alice @2005-03-02 bob_hiv
query cindy @2005-07-15 bob_hiv & bob_hepatitis
insert bob_hiv
query mallory @2007-02-20 bob_hiv
query dave @2007-03-01 bob_hiv -> bob_transfusion
query erin @2007-04-12 atmost(0, bob_hepatitis)
prior product
audit bob_hiv
prior subcube-knowledge
audit bob_hiv
)";

struct CliOptions {
  bool stats = false;
  epi::AuditorOptions auditor;
  const char* scenario_path = nullptr;
};

int run(std::istream& in, const CliOptions& cli) {
  using namespace epi;
  try {
    const ScenarioResult result = run_scenario(in, cli.auditor);
    for (const std::string& line : result.query_trace) {
      std::printf("[log] %s\n", line.c_str());
    }
    for (const AuditReport& report : result.reports) {
      std::printf("\n%s", format_report(report).c_str());
      if (cli.stats) {
        std::printf("\n%s", format_stage_stats(report).c_str());
      }
    }
    if (result.reports.empty()) {
      std::printf("(scenario contained no `audit` directive)\n");
    }
    return 0;
  } catch (const ScenarioError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      cli.stats = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--threads needs a count\n");
        return 1;
      }
      cli.auditor.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "unknown flag '%s'\n"
                   "usage: audit_cli [--stats] [--threads N] [scenario-file]\n",
                   argv[i]);
      return 1;
    } else {
      cli.scenario_path = argv[i];
    }
  }

  if (cli.scenario_path != nullptr) {
    std::ifstream file(cli.scenario_path);
    if (!file) {
      std::fprintf(stderr, "cannot open scenario file '%s'\n", cli.scenario_path);
      return 1;
    }
    return run(file, cli);
  }
  std::printf("(no scenario file given; running the built-in demonstration)\n\n");
  std::istringstream demo{std::string(kDemoScenario)};
  return run(demo, cli);
}
