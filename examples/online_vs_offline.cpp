// The introduction's online-auditing pitfall, simulated: Bob proactively
// answers "I am HIV-negative" while it is true and refuses afterwards — and
// a possibilistic Alice who knows the strategy infers his status from the
// refusal. Offline auditing of the same history has no such self-disclosure
// problem: the auditor's verdicts are never shown to users.
#include <cstdio>
#include <string>
#include <vector>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "possibilistic/knowledge.h"
#include "possibilistic/safe.h"

int main() {
  using namespace epi;

  // One relevant fact per year: "Bob is HIV-positive in year y".
  // Worlds = subsets of {infected_by_2006}; we model the two years Alice
  // asks in, with Omega = {negative_both_years, positive_in_2007}.
  // World 0: Bob stays negative; world 1: Bob turns positive before 2007.
  const std::size_t m = 2;

  std::printf("=== online (proactive) scenario ===\n");
  std::printf("Bob's strategy: answer 'negative' while true, else refuse.\n\n");

  // Alice's knowledge starts as 'anything possible'.
  FiniteSet alice(m, {0, 1});
  // 2005: Bob answers "I am HIV-negative". Consistent worlds: both (in world
  // 1 he is still negative in 2005 under this encoding? we encode world 1 as
  // positive from 2006) — the answer only rules nothing out yet.
  std::printf("2005: Bob answers 'negative'. Alice considers: %s\n",
              alice.to_string().c_str());
  // 2007: Bob refuses. Under the known strategy, refusal happens exactly
  // when he can no longer truthfully answer 'negative' — i.e. world 1.
  FiniteSet refusal_consistent(m, {1});
  alice &= refusal_consistent;
  std::printf("2007: Bob refuses.   Alice considers: %s -> she KNOWS world 1\n",
              alice.to_string().c_str());
  std::printf("The refusal disclosed the sensitive fact (intro, Section 1).\n\n");

  // Formally: with the strategy public, the 2007 'answer' partitions worlds
  // into {refuse} = {1} and {negative} = {0}; disclosing B = {1} to an agent
  // with S = {0,1} reveals A = {1}.
  SecondLevelKnowledge k(m);
  k.add(1, FiniteSet(m, {0, 1}));
  const bool online_safe = safe_possibilistic(k, FiniteSet(m, {1}), FiniteSet(m, {1}));
  std::printf("possibilistic Safe_K(A = positive, B = refusal): %s\n\n",
              online_safe ? "safe" : "VIOLATION");

  std::printf("=== offline (retroactive) scenario ===\n");
  RecordUniverse universe;
  universe.add("bob_hiv");
  InMemoryDatabase db(universe);

  AuditLog log;
  log.record("alice", "bob_hiv", db, "2005");   // negative at the time
  log.record("cindy", "bob_hiv", db, "2005");
  db.insert("bob_hiv");                          // Bob contracts HIV in 2006
  log.record("mallory", "bob_hiv", db, "2007");  // positive now

  Auditor auditor(universe, PriorAssumption::kUnrestricted);
  const AuditReport report = auditor.audit(log, "bob_hiv");
  for (const AuditFinding& f : report.per_disclosure) {
    std::printf("  %-8s asked '%s' (%s): %s\n", f.user.c_str(),
                f.query_text.c_str(), f.answer ? "true" : "false",
                to_string(f.verdict).c_str());
  }
  std::printf(
      "\nThe audit places suspicion on Mallory only — Alice and Cindy saw a\n"
      "negative answer, whose disclosure can only LOWER confidence in the\n"
      "audited fact. The auditor's conclusions are not fed back to users, so\n"
      "no refusal channel exists (the motivating contrast of Section 1).\n");
  return 0;
}
