// The introduction's online-auditing pitfall, simulated with the real
// OnlineAuditSession machinery: Bob proactively answers "I am HIV-negative"
// while it is true and refuses afterwards — and a possibilistic Alice who
// knows the strategy infers his status from the refusal. The simulatable
// strategy (Kenthapadi-Mishra-Nissim, the paper's [18]) denies in a way that
// carries no information; offline auditing of the same history has no
// self-disclosure problem at all: the auditor's verdicts are never shown to
// users.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/online.h"

namespace {

// Runs the two-query Alice interaction against one strategy and reports
// what the strategy-aware agent ends up knowing.
void run_strategy(epi::OnlineStrategy strategy) {
  using namespace epi;

  // Worlds over one record "bob_hiv_by_2007": world 0 = Bob stays negative,
  // world 1 = Bob turns positive before 2007. The sensitive set A = {1}.
  const WorldSet sensitive(1, {1});
  const World actual = 1;  // Bob does turn positive

  std::unique_ptr<OnlineAuditSession> session;
  const Status created =
      OnlineAuditSession::try_create(sensitive, actual, strategy, &session);
  if (!created.ok()) {
    std::printf("  could not create session: %s\n", created.to_string().c_str());
    return;
  }

  std::printf("--- strategy: %s ---\n", to_string(strategy).c_str());
  // Alice asks "is Bob HIV-positive?" in 2005 and again in 2007. Under this
  // encoding the 2005 truthful answer is "no" in both worlds (query true-set
  // empty: nobody is positive yet), the 2007 one is world-revealing ({1}).
  const WorldSet query_2005 = WorldSet::empty(1);  // "positive already in 2005"
  const WorldSet query_2007(1, {1});               // "positive by 2007"

  const OnlineResponse r2005 = session->ask(query_2005);
  std::printf("  2005: %s  -> Alice considers %s\n",
              r2005.denied ? "REFUSED" : (r2005.answer ? "answer 'positive'"
                                                       : "answer 'negative'"),
              r2005.agent_knowledge.to_string().c_str());
  const OnlineResponse r2007 = session->ask(query_2007);
  std::printf("  2007: %s  -> Alice considers %s\n",
              r2007.denied ? "REFUSED" : (r2007.answer ? "answer 'positive'"
                                                       : "answer 'negative'"),
              r2007.agent_knowledge.to_string().c_str());
  std::printf("  denials: %d; Alice %s the sensitive fact\n\n",
              session->denials(),
              session->agent_knows_sensitive() ? "KNOWS" : "does not know");
}

}  // namespace

int main() {
  using namespace epi;

  std::printf("=== online (proactive) scenario ===\n");
  std::printf(
      "Bob's 'truthful-when-safe' strategy refuses exactly when the honest\n"
      "answer would reveal A — so the refusal itself reveals A (intro,\n"
      "Section 1). The simulatable strategy decides from the agent's\n"
      "knowledge alone, so its denials leak nothing.\n\n");
  run_strategy(OnlineStrategy::kTruthfulWhenSafe);
  run_strategy(OnlineStrategy::kSimulatable);

  // try_create rejects a world outside the sensitive set's universe instead
  // of throwing mid-construction — the Status names both sizes.
  std::unique_ptr<OnlineAuditSession> bogus;
  const Status bad = OnlineAuditSession::try_create(
      WorldSet(1, {1}), /*actual=*/7, OnlineStrategy::kSimulatable, &bogus);
  std::printf("try_create with out-of-universe world: %s\n\n",
              bad.to_string().c_str());

  std::printf("=== offline (retroactive) scenario ===\n");
  RecordUniverse universe;
  universe.add("bob_hiv");
  InMemoryDatabase db(universe);

  AuditLog log;
  log.record("alice", "bob_hiv", db, "2005");   // negative at the time
  log.record("cindy", "bob_hiv", db, "2005");
  db.insert("bob_hiv");                          // Bob contracts HIV in 2006
  log.record("mallory", "bob_hiv", db, "2007");  // positive now

  Auditor auditor(universe, PriorAssumption::kUnrestricted);
  const AuditReport report = auditor.audit(log, "bob_hiv");
  for (const AuditFinding& f : report.per_disclosure) {
    std::printf("  %-8s asked '%s' (%s): %s\n", f.user.c_str(),
                f.query_text.c_str(), f.answer ? "true" : "false",
                to_string(f.verdict).c_str());
  }
  std::printf(
      "\nThe audit places suspicion on Mallory only — Alice and Cindy saw a\n"
      "negative answer, whose disclosure can only LOWER confidence in the\n"
      "audited fact. The auditor's conclusions are not fed back to users, so\n"
      "no refusal channel exists (the motivating contrast of Section 1).\n");
  return 0;
}
