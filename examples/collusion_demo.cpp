// Collusion analysis demo (Section 4.1's motivation for intersection-closed
// knowledge): two insurance agents each receive an individually-harmless
// answer about which patient a leaked record belongs to; together they
// identify the patient. The auditor who anticipates collusion must audit
// against the intersection-closure of the users' knowledge.
#include <cstdio>

#include "possibilistic/collusion.h"

int main() {
  using namespace epi;

  // Worlds: which of six patients the leaked record belongs to.
  const std::size_t m = 6;
  const char* patients[] = {"Ana", "Bob", "Cem", "Dee", "Eli", "Fay"};
  const std::size_t actual = 1;  // it is Bob's record
  const FiniteSet sensitive(m, {actual});

  std::printf("worlds: the leaked record belongs to one of six patients\n");
  std::printf("sensitive fact A: it is %s's record (the actual world)\n\n",
              patients[actual]);

  // Each user starts with no knowledge; each received one answered query.
  CollusionUser u1{"agentX",
                   {FiniteSet::universe(m)},
                   {FiniteSet(m, {0, 1, 2})}};  // "the patient is in ward A"
  CollusionUser u2{"agentY",
                   {FiniteSet::universe(m)},
                   {FiniteSet(m, {1, 3, 5})}};  // "the patient id is odd"
  CollusionUser u3{"agentZ",
                   {FiniteSet::universe(m)},
                   {FiniteSet(m, {0, 1, 2, 3, 4})}};  // "it is not Fay"

  std::printf("agentX learned: ward A            -> considers {Ana,Bob,Cem}\n");
  std::printf("agentY learned: odd patient id    -> considers {Bob,Dee,Fay}\n");
  std::printf("agentZ learned: not Fay           -> considers all but Fay\n\n");

  const auto findings = audit_coalitions({u1, u2, u3}, sensitive, actual);
  std::printf("%-28s %s\n", "coalition", "knows the sensitive fact?");
  for (const auto& f : findings) {
    std::string names;
    for (const auto& name : f.members) {
      names += (names.empty() ? "" : "+") + name;
    }
    std::printf("%-28s %s\n", names.c_str(), f.knows_sensitive ? "YES (breach)" : "no");
  }

  std::printf(
      "\nOnly the coalitions containing both agentX and agentY breach: their\n"
      "joint knowledge {Ana,Bob,Cem} ∩ {Bob,Dee,Fay} = {Bob}. This is why\n"
      "Definition 4.3 closes the auditor's assumption under intersections —\n"
      "and why the interval machinery of Section 4.1 is stated for\n"
      "intersection-closed knowledge.\n");
  return 0;
}
