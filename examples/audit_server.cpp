// The audit service daemon: loads a scenario, boots an epi::service
// AuditService and serves the JSON-lines wire protocol (src/service/
// protocol.h) over a Unix-domain socket. Pair with audit_client, or talk to
// it with anything that can write '\n'-framed JSON to a socket:
//
//   $ audit_server --socket /tmp/epi.sock --scenario hospital.scn &
//   $ printf '{"op": "audit", "id": 1, "user": "alice", "query": "bob_hiv"}\n' \
//       | socat - UNIX-CONNECT:/tmp/epi.sock
//
// Usage: audit_server [--socket PATH] [--scenario FILE] [--workers N]
//                     [--queue-capacity N] [--cache-capacity N]
//                     [--online truthful|simulatable] [--default-deadline-ms N]
//
// The scenario file (language: src/core/scenario.h) supplies the record
// universe, the database state and — from its last `audit` directive — the
// audited property and prior the service enforces. Without --scenario the
// built-in demonstration scenario is used.
//
// Signals: SIGUSR1 dumps the service metrics registry to stderr; SIGINT /
// SIGTERM (or a `shutdown` request) stop accepting connections, drain every
// accepted request and exit 0. Errors print a Status on stderr: exit 2 for
// bad flags, 1 for runtime failures.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.h"
#include "obs/export.h"
#include "service/audit_service.h"
#include "service/protocol.h"
#include "util/status.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump_metrics = 0;

void handle_stop(int) { g_stop = 1; }
void handle_usr1(int) { g_dump_metrics = 1; }

const char kDemoScenario[] = R"(# Built-in demonstration scenario
record bob_hiv
record bob_transfusion
record bob_hepatitis
insert bob_transfusion
insert bob_hiv
prior product
audit bob_hiv
)";

constexpr char kUsage[] =
    "usage: audit_server [--socket PATH] [--scenario FILE] [--workers N]\n"
    "                    [--queue-capacity N] [--cache-capacity N]\n"
    "                    [--online truthful|simulatable]\n"
    "                    [--default-deadline-ms N]\n"
    "  --socket PATH            Unix-domain socket to listen on\n"
    "                           (default /tmp/epi_audit.sock)\n"
    "  --scenario FILE          scenario script supplying records, state and\n"
    "                           the audited property (default: built-in demo)\n"
    "  --workers N              service worker threads (default 2)\n"
    "  --queue-capacity N       bounded request queue; beyond it submissions\n"
    "                           are rejected with ResourceExhausted\n"
    "  --cache-capacity N       verdict cache entries (0 disables caching)\n"
    "  --online STRATEGY        deny-unsafe online auditing: truthful leaks\n"
    "                           through denials, simulatable does not\n"
    "  --default-deadline-ms N  deadline for requests that carry none\n";

struct ServerOptions {
  std::string socket_path = "/tmp/epi_audit.sock";
  const char* scenario_path = nullptr;
  epi::service::ServiceOptions service;
  bool help = false;
};

epi::Status parse_args(int argc, char** argv, ServerOptions* out) {
  auto next_value = [&](int& i, const char* flag, const char** value) {
    if (i + 1 >= argc) {
      return epi::Status::InvalidArgument(std::string(flag) + " needs a value");
    }
    *value = argv[++i];
    return epi::Status::Ok();
  };
  auto next_count = [&](int& i, const char* flag, long* value) {
    const char* text = nullptr;
    if (const epi::Status s = next_value(i, flag, &text); !s.ok()) return s;
    char* end = nullptr;
    *value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || *value < 0) {
      return epi::Status::InvalidArgument(std::string(flag) +
                                          " needs a non-negative integer");
    }
    return epi::Status::Ok();
  };
  for (int i = 1; i < argc; ++i) {
    long n = 0;
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      out->help = true;
    } else if (std::strcmp(argv[i], "--socket") == 0) {
      if (const epi::Status s = next_value(i, "--socket", &value); !s.ok()) return s;
      out->socket_path = value;
    } else if (std::strcmp(argv[i], "--scenario") == 0) {
      if (const epi::Status s = next_value(i, "--scenario", &value); !s.ok()) return s;
      out->scenario_path = value;
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      if (const epi::Status s = next_count(i, "--workers", &n); !s.ok()) return s;
      out->service.workers = static_cast<unsigned>(n);
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
      if (const epi::Status s = next_count(i, "--queue-capacity", &n); !s.ok()) return s;
      out->service.queue_capacity = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0) {
      if (const epi::Status s = next_count(i, "--cache-capacity", &n); !s.ok()) return s;
      out->service.cache_capacity = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--online") == 0) {
      if (const epi::Status s = next_value(i, "--online", &value); !s.ok()) return s;
      if (std::strcmp(value, "truthful") == 0) {
        out->service.online_strategy = epi::OnlineStrategy::kTruthfulWhenSafe;
      } else if (std::strcmp(value, "simulatable") == 0) {
        out->service.online_strategy = epi::OnlineStrategy::kSimulatable;
      } else {
        return epi::Status::InvalidArgument(
            "--online must be 'truthful' or 'simulatable'");
      }
    } else if (std::strcmp(argv[i], "--default-deadline-ms") == 0) {
      if (const epi::Status s = next_count(i, "--default-deadline-ms", &n); !s.ok())
        return s;
      out->service.default_deadline = std::chrono::milliseconds(n);
    } else {
      return epi::Status::InvalidArgument(std::string("unknown flag '") +
                                          argv[i] + "'");
    }
  }
  return epi::Status::Ok();
}

/// Writes the whole buffer, riding out EINTR and partial writes. False when
/// the peer is gone (EPIPE & friends) — the connection just ends.
bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One request frame -> one response frame.
epi::service::WireResponse dispatch(const epi::service::WireRequest& request,
                                    epi::service::AuditService& service,
                                    std::atomic<bool>& stop_requested) {
  using epi::service::Op;
  using epi::service::WireResponse;
  WireResponse response;
  response.id = request.id;
  switch (request.op) {
    case Op::kHello: {
      response.ok = true;
      response.audit_query = service.audit_query();
      response.prior = epi::to_string(service.prior());
      break;
    }
    case Op::kAudit: {
      epi::service::AuditRequest audit;
      audit.user = request.user;
      audit.query_text = request.query;
      audit.answer = request.answer;
      if (request.deadline_ms > 0) {
        audit.deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(request.deadline_ms);
      }
      response = make_audit_response(request.id, service.process(std::move(audit)));
      break;
    }
    case Op::kMetrics: {
      response.ok = true;
      response.metrics_json = epi::obs::metrics_to_json(service.metrics_snapshot());
      break;
    }
    case Op::kResetSession: {
      const epi::Status s = service.reset_session(request.user);
      response.ok = s.ok();
      if (!s.ok()) {
        response.error = s.to_string();
        response.code = epi::service::status_code_slug(s.code());
      }
      break;
    }
    case Op::kShutdown: {
      response.ok = true;
      stop_requested.store(true, std::memory_order_relaxed);
      break;
    }
  }
  return response;
}

/// Per-connection loop: line-framed requests in, line-framed responses out.
/// A malformed frame gets an error response (id 0: the frame's id was
/// unreadable); the connection stays up.
void serve_connection(int fd, epi::service::AuditService& service,
                      std::atomic<bool>& stop_requested) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // peer closed (or shutdown forced the read side)
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      epi::service::WireRequest request;
      epi::service::WireResponse response;
      if (const epi::Status s = parse_request(line, &request); !s.ok()) {
        response.ok = false;
        response.error = s.to_string();
        response.code = epi::service::status_code_slug(s.code());
      } else {
        response = dispatch(request, service, stop_requested);
      }
      if (!write_all(fd, serialize_response(response) + "\n")) {
        ::close(fd);
        return;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

epi::Status load_scenario(const ServerOptions& options, epi::ScenarioResult* out) {
  epi::AuditorOptions auditor = options.service.auditor;
  auditor.threads = 1;
  if (options.scenario_path != nullptr) {
    std::ifstream file(options.scenario_path);
    if (!file) {
      return epi::Status::InvalidArgument(
          std::string("cannot open scenario file '") + options.scenario_path + "'");
    }
    return epi::try_run_scenario(file, out, auditor);
  }
  std::istringstream demo{std::string(kDemoScenario)};
  return epi::try_run_scenario(demo, out, auditor);
}

epi::Status run(const ServerOptions& options) {
  // The scenario supplies the universe and database state; its last `audit`
  // directive names the property (and prior) this service enforces.
  epi::ScenarioResult scenario;
  if (const epi::Status s = load_scenario(options, &scenario); !s.ok()) return s;
  if (scenario.reports.empty()) {
    return epi::Status::InvalidArgument(
        "scenario has no `audit` directive; the service needs one to know "
        "which property to enforce");
  }
  const epi::AuditReport& last = scenario.reports.back();

  std::unique_ptr<epi::service::AuditService> service;
  if (const epi::Status s = epi::service::AuditService::try_create(
          scenario.universe, scenario.final_state, last.audit_query, last.prior,
          options.service, &service);
      !s.ok()) {
    return s;
  }

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return epi::Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd);
    return epi::Status::InvalidArgument("socket path too long: " +
                                        options.socket_path);
  }
  std::strncpy(addr.sun_path, options.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(options.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const epi::Status s = epi::Status::Internal(
        "bind '" + options.socket_path + "': " + std::strerror(errno));
    ::close(listen_fd);
    return s;
  }
  if (::listen(listen_fd, 64) < 0) {
    const epi::Status s =
        epi::Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd);
    return s;
  }

  std::printf("audit_server: enforcing \"%s\" under %s prior on %s\n",
              last.audit_query.c_str(), epi::to_string(last.prior).c_str(),
              options.socket_path.c_str());
  std::fflush(stdout);

  std::atomic<bool> stop_requested{false};
  std::vector<std::thread> connections;
  std::mutex fds_mutex;
  std::vector<int> open_fds;

  while (!g_stop && !stop_requested.load(std::memory_order_relaxed)) {
    if (g_dump_metrics) {
      g_dump_metrics = 0;
      std::fprintf(stderr, "%s",
                   epi::obs::metrics_to_text(service->metrics_snapshot()).c_str());
    }
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(fds_mutex);
      open_fds.push_back(fd);
    }
    connections.emplace_back([fd, &service, &stop_requested] {
      serve_connection(fd, *service, stop_requested);
    });
  }

  // Graceful drain: stop listening, nudge every open connection's read side
  // so its thread unblocks, let the service resolve everything it accepted.
  ::close(listen_fd);
  ::unlink(options.socket_path.c_str());
  {
    std::lock_guard<std::mutex> lock(fds_mutex);
    for (const int fd : open_fds) ::shutdown(fd, SHUT_RD);
  }
  for (std::thread& t : connections) t.join();
  service->shutdown();
  std::fprintf(stderr, "audit_server: drained and stopped\n%s",
               epi::obs::metrics_to_text(service->metrics_snapshot()).c_str());
  return epi::Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  if (const epi::Status s = parse_args(argc, argv, &options); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.to_string().c_str(), kUsage);
    return 2;
  }
  if (options.help) {
    std::printf("%s", kUsage);
    return 0;
  }
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa{};
  sa.sa_handler = handle_stop;  // no SA_RESTART: poll/accept must see EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  sa.sa_handler = handle_usr1;
  sigaction(SIGUSR1, &sa, nullptr);

  epi::Status status = epi::Status::Ok();
  try {
    status = run(options);
  } catch (const std::exception& e) {
    status = epi::Status::Internal(e.what());
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    return 1;
  }
  return 0;
}
