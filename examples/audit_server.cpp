// The audit service daemon: loads a scenario, boots an epi::service
// AuditService and serves the JSON-lines wire protocol (src/service/
// protocol.h) over any mix of Unix-domain and TCP listeners, multiplexed by
// one epoll event loop (src/net/). Pair with audit_client, put a
// shard_router in front of N of these, or talk to it with anything that can
// write '\n'-framed JSON to a socket:
//
//   $ audit_server --listen unix:/tmp/epi.sock --listen tcp:127.0.0.1:7171 &
//   $ printf '{"op": "audit", "id": 1, "user": "alice", "query": "bob_hiv"}\n' |
//       socat - UNIX-CONNECT:/tmp/epi.sock
//
// Usage: audit_server [--listen unix:PATH|tcp:HOST:PORT]... [--socket PATH]
//                     [--scenario FILE] [--workers N] [--queue-capacity N]
//                     [--cache-capacity N] [--online truthful|simulatable]
//                     [--default-deadline-ms N] [--idle-timeout-ms N]
//
// --listen repeats; every listener serves simultaneously. `tcp:HOST:0` gets
// a kernel-assigned port, printed as `audit_server: listening on ...` so
// scripts can scrape the dialable address. --socket PATH is the legacy
// spelling of --listen unix:PATH. A stale Unix socket file left by a crash
// is probed and unlinked; a live server on it is a startup error.
//
// The scenario file (language: src/core/scenario.h) supplies the record
// universe, the database state and — from its last `audit` directive — the
// audited property and prior the service enforces. Without --scenario the
// built-in demonstration scenario is used.
//
// Signals: SIGUSR1 dumps the service metrics registry to stderr; SIGINT /
// SIGTERM (or a `shutdown` request) stop accepting connections, drain every
// accepted request and exit 0. Errors print a Status on stderr: exit 2 for
// bad flags, 1 for runtime failures.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "net/address.h"
#include "net/service_server.h"
#include "obs/export.h"
#include "service/audit_service.h"
#include "util/status.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump_metrics = 0;

void handle_stop(int) { g_stop = 1; }
void handle_usr1(int) { g_dump_metrics = 1; }

const char kDemoScenario[] = R"(# Built-in demonstration scenario
record bob_hiv
record bob_transfusion
record bob_hepatitis
insert bob_transfusion
insert bob_hiv
prior product
audit bob_hiv
)";

constexpr char kUsage[] =
    "usage: audit_server [--listen unix:PATH|tcp:HOST:PORT]... [--socket PATH]\n"
    "                    [--scenario FILE] [--workers N] [--queue-capacity N]\n"
    "                    [--cache-capacity N]\n"
    "                    [--online truthful|simulatable]\n"
    "                    [--default-deadline-ms N] [--idle-timeout-ms N]\n"
    "  --listen ADDR            listen address (repeatable; unix: and tcp:\n"
    "                           listeners serve simultaneously; tcp HOST:0\n"
    "                           picks a free port, printed on startup).\n"
    "                           Default unix:/tmp/epi_audit.sock\n"
    "  --socket PATH            legacy alias for --listen unix:PATH\n"
    "  --scenario FILE          scenario script supplying records, state and\n"
    "                           the audited property (default: built-in demo)\n"
    "  --workers N              service worker threads (default 2)\n"
    "  --queue-capacity N       bounded request queue; beyond it submissions\n"
    "                           are rejected with ResourceExhausted\n"
    "  --cache-capacity N       verdict cache entries (0 disables caching)\n"
    "  --online STRATEGY        deny-unsafe online auditing: truthful leaks\n"
    "                           through denials, simulatable does not\n"
    "  --default-deadline-ms N  deadline for requests that carry none\n"
    "  --idle-timeout-ms N      drop connections idle this long (0 = never)\n";

struct ServerOptions {
  std::vector<std::string> listen_specs;
  const char* scenario_path = nullptr;
  long idle_timeout_ms = 0;
  epi::service::ServiceOptions service;
  bool help = false;
};

epi::Status parse_args(int argc, char** argv, ServerOptions* out) {
  auto next_value = [&](int& i, const char* flag, const char** value) {
    if (i + 1 >= argc) {
      return epi::Status::InvalidArgument(std::string(flag) + " needs a value");
    }
    *value = argv[++i];
    return epi::Status::Ok();
  };
  auto next_count = [&](int& i, const char* flag, long* value) {
    const char* text = nullptr;
    if (const epi::Status s = next_value(i, flag, &text); !s.ok()) return s;
    char* end = nullptr;
    *value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || *value < 0) {
      return epi::Status::InvalidArgument(std::string(flag) +
                                          " needs a non-negative integer");
    }
    return epi::Status::Ok();
  };
  for (int i = 1; i < argc; ++i) {
    long n = 0;
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      out->help = true;
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      if (const epi::Status s = next_value(i, "--listen", &value); !s.ok()) return s;
      out->listen_specs.push_back(value);
    } else if (std::strcmp(argv[i], "--socket") == 0) {
      if (const epi::Status s = next_value(i, "--socket", &value); !s.ok()) return s;
      out->listen_specs.push_back(std::string("unix:") + value);
    } else if (std::strcmp(argv[i], "--scenario") == 0) {
      if (const epi::Status s = next_value(i, "--scenario", &value); !s.ok()) return s;
      out->scenario_path = value;
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      if (const epi::Status s = next_count(i, "--workers", &n); !s.ok()) return s;
      out->service.workers = static_cast<unsigned>(n);
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
      if (const epi::Status s = next_count(i, "--queue-capacity", &n); !s.ok()) return s;
      out->service.queue_capacity = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0) {
      if (const epi::Status s = next_count(i, "--cache-capacity", &n); !s.ok()) return s;
      out->service.cache_capacity = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--online") == 0) {
      if (const epi::Status s = next_value(i, "--online", &value); !s.ok()) return s;
      if (std::strcmp(value, "truthful") == 0) {
        out->service.online_strategy = epi::OnlineStrategy::kTruthfulWhenSafe;
      } else if (std::strcmp(value, "simulatable") == 0) {
        out->service.online_strategy = epi::OnlineStrategy::kSimulatable;
      } else {
        return epi::Status::InvalidArgument(
            "--online must be 'truthful' or 'simulatable'");
      }
    } else if (std::strcmp(argv[i], "--default-deadline-ms") == 0) {
      if (const epi::Status s = next_count(i, "--default-deadline-ms", &n); !s.ok())
        return s;
      out->service.default_deadline = std::chrono::milliseconds(n);
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      if (const epi::Status s = next_count(i, "--idle-timeout-ms", &n); !s.ok())
        return s;
      out->idle_timeout_ms = n;
    } else {
      return epi::Status::InvalidArgument(std::string("unknown flag '") +
                                          argv[i] + "'");
    }
  }
  if (out->listen_specs.empty()) {
    out->listen_specs.push_back("unix:/tmp/epi_audit.sock");
  }
  return epi::Status::Ok();
}

epi::Status load_scenario(const ServerOptions& options, epi::ScenarioResult* out) {
  epi::AuditorOptions auditor = options.service.auditor;
  auditor.threads = 1;
  if (options.scenario_path != nullptr) {
    std::ifstream file(options.scenario_path);
    if (!file) {
      return epi::Status::InvalidArgument(
          std::string("cannot open scenario file '") + options.scenario_path + "'");
    }
    return epi::try_run_scenario(file, out, auditor);
  }
  std::istringstream demo{std::string(kDemoScenario)};
  return epi::try_run_scenario(demo, out, auditor);
}

epi::Status run(const ServerOptions& options) {
  // The scenario supplies the universe and database state; its last `audit`
  // directive names the property (and prior) this service enforces.
  epi::ScenarioResult scenario;
  if (const epi::Status s = load_scenario(options, &scenario); !s.ok()) return s;
  if (scenario.reports.empty()) {
    return epi::Status::InvalidArgument(
        "scenario has no `audit` directive; the service needs one to know "
        "which property to enforce");
  }
  const epi::AuditReport& last = scenario.reports.back();

  std::unique_ptr<epi::service::AuditService> service;
  if (const epi::Status s = epi::service::AuditService::try_create(
          scenario.universe, scenario.final_state, last.audit_query, last.prior,
          options.service, &service);
      !s.ok()) {
    return s;
  }

  epi::net::EventLoop::Options loop_options;
  loop_options.idle_timeout = std::chrono::milliseconds(options.idle_timeout_ms);
  std::unique_ptr<epi::net::ServiceServer> server;
  if (const epi::Status s = epi::net::ServiceServer::try_create(
          service.get(), loop_options, &server);
      !s.ok()) {
    return s;
  }

  for (const std::string& spec : options.listen_specs) {
    epi::net::Address addr;
    if (epi::Status s = epi::net::parse_address(spec, &addr); !s.ok()) return s;
    if (epi::Status s = server->add_listener(&addr); !s.ok()) return s;
    // The resolved form: a tcp:HOST:0 listener prints its real port.
    std::printf("audit_server: listening on %s\n", addr.to_string().c_str());
  }
  std::printf("audit_server: enforcing \"%s\" under %s prior\n",
              last.audit_query.c_str(), epi::to_string(last.prior).c_str());
  std::fflush(stdout);

  // Signal pump: a self-rescheduling 200 ms timer turns the async-signal
  // flags into loop-thread actions (epoll_wait wakes on EINTR because the
  // handlers install without SA_RESTART).
  auto pump = std::make_shared<std::function<void()>>();
  epi::net::ServiceServer* server_ptr = server.get();
  epi::service::AuditService* service_ptr = service.get();
  *pump = [server_ptr, service_ptr, pump] {
    if (g_dump_metrics) {
      g_dump_metrics = 0;
      std::fprintf(
          stderr, "%s",
          epi::obs::metrics_to_text(service_ptr->metrics_snapshot()).c_str());
    }
    if (g_stop) server_ptr->begin_shutdown();
    if (server_ptr->draining()) return;  // the loop is on its way out
    server_ptr->loop().post_at(
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200),
        *pump);
  };
  server->loop().post_at(std::chrono::steady_clock::now(), *pump);

  const epi::Status status = server->run();
  service->shutdown();
  std::fprintf(stderr, "audit_server: drained and stopped\n%s",
               epi::obs::metrics_to_text(service->metrics_snapshot()).c_str());
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  if (const epi::Status s = parse_args(argc, argv, &options); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.to_string().c_str(), kUsage);
    return 2;
  }
  if (options.help) {
    std::printf("%s", kUsage);
    return 0;
  }
  std::signal(SIGPIPE, SIG_IGN);  // belt; every net/ send is MSG_NOSIGNAL
  struct sigaction sa{};
  sa.sa_handler = handle_stop;  // no SA_RESTART: epoll_wait must see EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  sa.sa_handler = handle_usr1;
  sigaction(SIGUSR1, &sa, nullptr);

  epi::Status status = epi::Status::Ok();
  try {
    status = run(options);
  } catch (const std::exception& e) {
    status = epi::Status::Internal(e.what());
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    return 1;
  }
  return 0;
}
