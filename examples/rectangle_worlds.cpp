// Example 4.9 / Figure 1, interactively rendered: a 14 x 7 pixel grid of
// worlds, integer sub-rectangles as the admissible knowledge sets, and the
// interval machinery of Section 4.1 — K-intervals, the minimal intervals
// from omega_1 to the complement of the audited set, and the induced Delta
// classes that a safe disclosure must intersect.
#include <cstdio>
#include <memory>

#include "possibilistic/intervals.h"
#include "possibilistic/rectangles.h"
#include "possibilistic/safe.h"

int main() {
  using namespace epi;

  const GridDomain grid(14, 7);
  // The complement of the audited set A: the discretized ellipse of Fig. 1.
  const FiniteSet a_bar = grid.ellipse(9.0, 4.0, 5.2, 2.9);
  const FiniteSet a = ~a_bar;
  const std::size_t omega1 = grid.index(1, 1);

  std::printf("A-bar (the ellipse; '#' marks its pixels):\n%s\n",
              grid.render(a_bar).c_str());

  auto sigma = std::make_shared<RectangleSigma>(grid);
  IntervalOracle oracle(sigma, FiniteSet::universe(grid.size()));

  auto iv1 = oracle.interval(omega1, grid.index(4, 4));
  auto iv2 = oracle.interval(omega1, grid.index(9, 3));
  std::printf("I_K(omega1, omega2) for omega2 = (4,4):\n%s\n",
              grid.render(*iv1).c_str());
  std::printf("I_K(omega1, omega2') for omega2' = (9,3):\n%s\n",
              grid.render(*iv2).c_str());

  std::printf("minimal intervals from omega1 = (1,1) to A-bar:\n");
  const auto minimal = oracle.minimal_intervals(omega1, a_bar);
  for (const FiniteSet& interval : minimal) {
    std::printf("%s\n", grid.render(interval).c_str());
  }

  std::printf("Delta classes (each must meet any safe disclosure B):\n");
  for (const FiniteSet& cls : oracle.delta_partition(a_bar, omega1)) {
    cls.visit([&](std::size_t w) {
      std::printf("  pixel (%zu, %zu)\n", grid.x_of(w), grid.y_of(w));
    });
  }

  // Audit two candidate disclosures with the precomputed structure.
  auto prepared = oracle.prepare(a);
  FiniteSet b_good(grid.size(), {omega1, grid.index(4, 4), grid.index(5, 3),
                                 grid.index(6, 2)});
  FiniteSet b_bad(grid.size(), {omega1, grid.index(4, 4), grid.index(5, 3)});
  std::printf("\nB covering all three corners  -> safe:   %s\n",
              prepared.safe(b_good) ? "yes" : "no");
  std::printf("B missing the (6,2) interval  -> safe:   %s\n",
              prepared.safe(b_bad) ? "yes" : "no");
  std::printf("tight intervals (Cor. 4.14 beta exists): %s\n",
              oracle.has_tight_intervals() ? "yes" : "no");
  return 0;
}
