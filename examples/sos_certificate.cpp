// Section 6.2 hands-on: print an actual Positivstellensatz certificate that
// a disclosure is safe for every product prior — the algebraic proof object
// behind a "safe" verdict, for the hard instance of Remark 5.12 that defeats
// all of the paper's combinatorial criteria.
#include <cstdio>

#include "algebra/safety_polynomial.h"
#include "criteria/cancellation.h"
#include "criteria/miklau_suciu.h"
#include "criteria/monotonicity.h"
#include "linalg/eigen.h"
#include "optimize/positivstellensatz.h"

int main() {
  using namespace epi;

  const unsigned n = 3;
  const WorldSet a = WorldSet::from_strings(n, {"011", "100", "110", "111"});
  const WorldSet b = WorldSet::from_strings(n, {"010", "101", "110", "111"});
  std::printf("A = %s\nB = %s\n\n", a.to_string().c_str(), b.to_string().c_str());

  std::printf("combinatorial criteria:\n");
  std::printf("  Miklau-Suciu independent: %s\n",
              miklau_suciu_independent(a, b) ? "yes" : "no");
  std::printf("  monotonicity criterion:   %s\n",
              monotonicity_criterion(a, b) ? "yes" : "no");
  std::printf("  cancellation criterion:   %s (Remark 5.12's counterexample)\n\n",
              cancellation_criterion(a, b).holds ? "yes" : "no");

  const Polynomial margin = product_safety_margin(a, b).pruned(1e-14);
  std::printf("safety margin P[A]P[B] - P[AB] (in Bernoulli parameters):\n  %s\n\n",
              margin.to_string().c_str());

  SdpOptions sdp;
  sdp.max_iterations = 20000;
  const auto cert = prove_nonneg_on_box(margin, 4, sdp);
  if (!cert) {
    std::printf("no certificate found within budget\n");
    return 1;
  }
  std::printf("Positivstellensatz certificate found: margin = sigma_0 + "
              "sum_S sigma_S * prod_{i in S} p_i(1-p_i)\n\n");
  std::printf("sigma_0 basis size %zu, min eigenvalue %.2e\n",
              cert->sigma0.basis.size(), min_eigenvalue(cert->sigma0.gram));
  for (std::size_t k = 0; k < cert->multipliers.size(); ++k) {
    const Polynomial sigma =
        cert->multipliers[k].to_polynomial(n).pruned(1e-9);
    if (sigma.is_zero(1e-9)) continue;
    std::string subset;
    for (unsigned i = 0; i < n; ++i) {
      if ((cert->multiplier_subsets[k] >> i) & 1u) {
        subset += (subset.empty() ? "" : ",");
        subset += "p" + std::to_string(i);
      }
    }
    std::printf("sigma_{%s} = %s  (min eig %.2e)\n", subset.c_str(),
                sigma.to_string().c_str(),
                min_eigenvalue(cert->multipliers[k].gram));
  }
  const double err = cert->to_polynomial(n).max_coeff_difference(margin);
  std::printf("\nreconstruction max coefficient error: %.2e\n", err);
  std::printf("=> Safe_{Pi_m0}(A,B) PROVED for every product prior.\n");
  return 0;
}
