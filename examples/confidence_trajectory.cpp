// Visualizing why the epistemic definition clears a disclosure: replay a
// user's answered queries against hypothetical priors and chart the
// confidence in the sensitive fact after each answer. Gains (upward steps)
// are what auditing forbids; losses are explicitly allowed.
#include <cstdio>

#include "core/simulation.h"
#include "db/parser.h"

int main() {
  using namespace epi;

  RecordUniverse universe;
  universe.add("bob_hiv");
  universe.add("bob_transfusion");

  InMemoryDatabase db(universe);
  db.insert("bob_hiv");
  db.insert("bob_transfusion");

  AuditLog log;
  log.record("alice", "bob_hiv -> bob_transfusion", db);
  log.record("alice", "!bob_transfusion", db);  // answer: false
  log.record("mallory", "bob_hiv", db);

  const WorldSet a = parse_query("bob_hiv")->compile(universe);

  std::printf("sensitive fact A: bob_hiv; chart = P[A | answers so far]\n\n");

  std::printf("--- Alice under a uniform prior ---\n%s\n",
              render_trajectory(confidence_trajectory(
                                    Distribution::uniform(2), log, universe, a,
                                    "alice"))
                  .c_str());

  // A skeptical prior: Bob probably healthy, transfusion likely if ill.
  std::vector<double> w(4);
  w[world_from_string("00")] = 0.55;
  w[world_from_string("01")] = 0.25;
  w[world_from_string("10")] = 0.15;
  w[world_from_string("11")] = 0.05;
  Distribution skeptic(2, w);
  std::printf("--- Alice under a skeptical prior (P[A] = 0.2) ---\n%s\n",
              render_trajectory(confidence_trajectory(skeptic, log, universe, a,
                                                      "alice"))
                  .c_str());

  std::printf("--- Mallory under a uniform prior ---\n%s\n",
              render_trajectory(confidence_trajectory(
                                    Distribution::uniform(2), log, universe, a,
                                    "mallory"))
                  .c_str());

  std::printf(
      "The implication answer only ever LOWERS Alice's confidence (safe for\n"
      "every prior, Section 1.1). Her second answer — '!bob_transfusion' came\n"
      "back FALSE, i.e. Bob did have transfusions — is a positive fact and\n"
      "pushes the confidence back up for an agent who already absorbed the\n"
      "implication: exactly the kind of step-up a per-user cumulative audit\n"
      "(Section 3.3) must examine. Mallory's direct answer jumps straight to\n"
      "certainty — the unambiguous breach.\n");
  return 0;
}
