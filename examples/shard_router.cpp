// The shard router daemon: the front process of a horizontally sharded
// audit deployment (src/net/shard_router.h). Clients dial the router with
// the ordinary JSON-lines protocol; each session key (`user`) is
// consistent-hashed onto one audit_server worker, with replay-based
// rebalancing keeping verdicts byte-identical to an unsharded server across
// worker adds, drains and crashes.
//
//   $ audit_server --listen tcp:127.0.0.1:7101 --scenario h.scn &
//   $ audit_server --listen tcp:127.0.0.1:7102 --scenario h.scn &
//   $ shard_router --listen unix:/tmp/epi_router.sock --worker tcp:127.0.0.1:7101 --worker tcp:127.0.0.1:7102 &
//   $ audit_client --socket /tmp/epi_router.sock --query bob_hiv
//
// Usage: shard_router [--listen unix:PATH|tcp:HOST:PORT]...
//                     [--worker ADDR]... [--vnodes N]
//                     [--health-interval-ms N] [--health-max-missed N]
//
// Workers can also be added/removed at runtime with the add_worker /
// remove_worker admin ops (audit_client --op add_worker --addr ...). Every
// worker must serve the same scenario; the router never looks inside a
// verdict, it only relays bytes.
//
// Signals: SIGINT / SIGTERM (or a wire `shutdown`) shut the workers down,
// drain and exit 0. Exit 2 for bad flags, 1 for runtime failures.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/shard_router.h"
#include "util/status.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

constexpr char kUsage[] =
    "usage: shard_router [--listen unix:PATH|tcp:HOST:PORT]...\n"
    "                    [--worker ADDR]... [--vnodes N]\n"
    "                    [--health-interval-ms N] [--health-max-missed N]\n"
    "  --listen ADDR            client-facing listen address (repeatable;\n"
    "                           default unix:/tmp/epi_router.sock)\n"
    "  --worker ADDR            audit_server worker to join the ring\n"
    "                           (repeatable; more can join at runtime via\n"
    "                           the add_worker op)\n"
    "  --vnodes N               virtual nodes per worker (default 64)\n"
    "  --health-interval-ms N   worker ping cadence (default 1000; 0 off)\n"
    "  --health-max-missed N    unanswered pings before a worker is\n"
    "                           declared dead (default 3)\n";

struct Options {
  std::vector<std::string> listen_specs;
  std::vector<std::string> worker_specs;
  epi::net::RouterOptions router;
  bool help = false;
};

epi::Status parse_args(int argc, char** argv, Options* out) {
  auto next_value = [&](int& i, const char* flag, const char** value) {
    if (i + 1 >= argc) {
      return epi::Status::InvalidArgument(std::string(flag) + " needs a value");
    }
    *value = argv[++i];
    return epi::Status::Ok();
  };
  auto next_count = [&](int& i, const char* flag, long* value) {
    const char* text = nullptr;
    if (const epi::Status s = next_value(i, flag, &text); !s.ok()) return s;
    char* end = nullptr;
    *value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || *value < 0) {
      return epi::Status::InvalidArgument(std::string(flag) +
                                          " needs a non-negative integer");
    }
    return epi::Status::Ok();
  };
  for (int i = 1; i < argc; ++i) {
    long n = 0;
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      out->help = true;
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      if (const epi::Status s = next_value(i, "--listen", &value); !s.ok()) return s;
      out->listen_specs.push_back(value);
    } else if (std::strcmp(argv[i], "--worker") == 0) {
      if (const epi::Status s = next_value(i, "--worker", &value); !s.ok()) return s;
      out->worker_specs.push_back(value);
    } else if (std::strcmp(argv[i], "--vnodes") == 0) {
      if (const epi::Status s = next_count(i, "--vnodes", &n); !s.ok()) return s;
      out->router.vnodes = static_cast<unsigned>(n);
    } else if (std::strcmp(argv[i], "--health-interval-ms") == 0) {
      if (const epi::Status s = next_count(i, "--health-interval-ms", &n); !s.ok())
        return s;
      out->router.health_interval = std::chrono::milliseconds(n);
    } else if (std::strcmp(argv[i], "--health-max-missed") == 0) {
      if (const epi::Status s = next_count(i, "--health-max-missed", &n); !s.ok())
        return s;
      out->router.health_max_missed = static_cast<unsigned>(n);
    } else {
      return epi::Status::InvalidArgument(std::string("unknown flag '") +
                                          argv[i] + "'");
    }
  }
  if (out->listen_specs.empty()) {
    out->listen_specs.push_back("unix:/tmp/epi_router.sock");
  }
  return epi::Status::Ok();
}

epi::Status run(const Options& options) {
  std::unique_ptr<epi::net::ShardRouter> router;
  if (const epi::Status s =
          epi::net::ShardRouter::try_create(options.router, &router);
      !s.ok()) {
    return s;
  }

  for (const std::string& spec : options.worker_specs) {
    epi::net::Address addr;
    if (epi::Status s = epi::net::parse_address(spec, &addr); !s.ok()) return s;
    if (epi::Status s = router->add_worker(addr); !s.ok()) return s;
    std::printf("shard_router: worker %s joined\n", addr.to_string().c_str());
  }
  for (const std::string& spec : options.listen_specs) {
    epi::net::Address addr;
    if (epi::Status s = epi::net::parse_address(spec, &addr); !s.ok()) return s;
    if (epi::Status s = router->add_listener(&addr); !s.ok()) return s;
    std::printf("shard_router: listening on %s\n", addr.to_string().c_str());
  }
  std::printf("shard_router: routing across %zu workers\n",
              router->worker_count());
  std::fflush(stdout);

  // Signal pump, same shape as audit_server's: flags become loop actions.
  auto pump = std::make_shared<std::function<void()>>();
  epi::net::ShardRouter* router_ptr = router.get();
  *pump = [router_ptr, pump] {
    if (g_stop) {
      router_ptr->begin_shutdown();
      return;
    }
    router_ptr->loop().post_at(
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200),
        *pump);
  };
  router->loop().post_at(std::chrono::steady_clock::now(), *pump);

  const epi::Status status = router->run();
  std::fprintf(stderr, "shard_router: drained and stopped\n");
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (const epi::Status s = parse_args(argc, argv, &options); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.to_string().c_str(), kUsage);
    return 2;
  }
  if (options.help) {
    std::printf("%s", kUsage);
    return 0;
  }
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa{};
  sa.sa_handler = handle_stop;  // no SA_RESTART: epoll_wait must see EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  epi::Status status = epi::Status::Ok();
  try {
    status = run(options);
  } catch (const std::exception& e) {
    status = epi::Status::Internal(e.what());
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    return 1;
  }
  return 0;
}
