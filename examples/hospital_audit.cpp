// A fuller offline-auditing scenario: a hospital database, several users
// issuing queries over time, and an audit of the sensitive fact under all
// three supported prior-knowledge assumptions. Shows how stronger (smaller)
// prior families clear strictly more disclosures — the paper's central
// flexibility argument.
#include <cstdio>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/report.h"

int main() {
  using namespace epi;

  RecordUniverse universe;
  universe.add(Record{"bob_hiv", {{"patient", "Bob"}, {"fact", "HIV-positive"}}});
  universe.add(Record{"bob_transfusion", {{"patient", "Bob"}}});
  universe.add(Record{"bob_hepatitis", {{"patient", "Bob"}}});
  universe.add(Record{"carol_diabetes", {{"patient", "Carol"}}});

  InMemoryDatabase db(universe);

  AuditLog log;
  // 2005: Bob is still HIV-negative; he has had a transfusion.
  db.insert("bob_transfusion");
  log.record("alice", "bob_hiv", db, "2005-03-02");          // answer false
  log.record("cindy", "bob_hiv & bob_hepatitis", db, "2005-07-15");
  // 2006: Bob contracts HIV; Carol's record is added.
  db.insert("bob_hiv");
  db.insert("carol_diabetes");
  // 2007: more queries after the infection.
  log.record("mallory", "bob_hiv", db, "2007-02-20");        // answer true
  log.record("dave", "bob_hiv -> bob_transfusion", db, "2007-03-01");
  log.record("erin", "!bob_hepatitis", db, "2007-04-12");
  log.record("erin", "carol_diabetes | bob_hiv", db, "2007-04-12");

  std::printf("database at audit time: %s\n", db.to_string().c_str());
  std::printf("audit query: bob_hiv (initiated by Bob after a suspected leak)\n\n");

  for (PriorAssumption prior :
       {PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
        PriorAssumption::kLogSupermodular, PriorAssumption::kSubcubeKnowledge}) {
    Auditor auditor(universe, prior);
    const AuditReport report = auditor.audit(log, "bob_hiv");
    std::printf("================ prior assumption: %s ================\n",
                to_string(prior).c_str());
    std::printf("%s\n", format_report(report).c_str());
  }

  std::printf(
      "Reading the reports: Mallory's direct query is flagged under every\n"
      "assumption; Alice and Cindy queried before the infection (their answers\n"
      "assert the complement of the audited fact) and are cleared; Dave's\n"
      "implication and Erin's negative answer are cleared only once the\n"
      "auditor is willing to assume independent (or positively correlated)\n"
      "priors — the flexibility gained by the epistemic definition.\n");
  return 0;
}
