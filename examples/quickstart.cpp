// Quickstart: the paper's Section 1.1 scenario end to end.
//
// Hospital database with two records about Bob. Alice asks the implication
// query "if Bob is HIV-positive then he had blood transfusions" and learns a
// true answer. Is the privacy of "Bob is HIV-positive" violated? Epistemic
// privacy says NO — no prior whatsoever can gain confidence from that answer
// — while the classical perfect-secrecy test (Miklau-Suciu) would refuse it.
#include <cstdio>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/report.h"
#include "criteria/miklau_suciu.h"
#include "db/parser.h"

int main() {
  using namespace epi;

  // 1. The relevant records: each becomes one coordinate of {0,1}^n.
  RecordUniverse universe;
  universe.add(Record{"bob_hiv", {{"patient", "Bob"}, {"fact", "HIV-positive"}}});
  universe.add(Record{"bob_transfusion",
                      {{"patient", "Bob"}, {"fact", "had blood transfusions"}}});

  // 2. The actual database: both facts hold.
  InMemoryDatabase db(universe);
  db.insert("bob_hiv");
  db.insert("bob_transfusion");
  std::printf("database: %s\n\n", db.to_string().c_str());

  // 3. Users ask queries; every answered query lands in the audit log.
  AuditLog log;
  log.record("alice", "bob_hiv -> bob_transfusion", db, "2008-06-09");
  log.record("mallory", "bob_hiv", db, "2008-06-10");

  // 4. Offline audit: could any disclosure have *raised* someone's
  //    confidence in the sensitive fact, under ANY prior?
  Auditor auditor(universe, PriorAssumption::kUnrestricted);
  const AuditReport report = auditor.audit(log, "bob_hiv");
  std::printf("%s\n", format_report(report).c_str());

  // 5. Contrast with perfect secrecy: A and B share the critical record
  //    bob_hiv, so Miklau-Suciu would reject Alice's query even though it
  //    provably cannot increase anyone's confidence.
  const WorldSet a = parse_query("bob_hiv")->compile(universe);
  const WorldSet b = parse_query("bob_hiv -> bob_transfusion")->compile(universe);
  std::printf("Miklau-Suciu (perfect secrecy) clears Alice's query: %s\n",
              miklau_suciu_independent(a, b) ? "yes" : "no");
  std::printf("Epistemic privacy clears Alice's query:              %s\n",
              report.per_disclosure[0].verdict == Verdict::kSafe ? "yes" : "no");
  return 0;
}
