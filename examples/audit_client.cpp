// Command-line client for audit_server / shard_router: connects over a Unix
// or TCP socket, speaks the JSON-lines wire protocol (src/service/
// protocol.h) and prints one tab-separated line per verdict — stable output
// made for diffing, which is exactly what tests/service_smoke.sh and
// tests/shard_smoke.sh do against the offline auditor.
//
// Usage: audit_client --connect unix:PATH|tcp:HOST:PORT [--user NAME]
//                     [--query TEXT]... [--query-file FILE] [--repeat N]
//                     [--deadline-ms N] [--addr WORKER]
//                     [--op hello|metrics|reset_session|shutdown
//                         |add_worker|remove_worker]
//
// --socket PATH stays as the legacy spelling of --connect unix:PATH. The
// add_worker / remove_worker ops are shard_router admin (--addr names the
// worker's listen address); a plain audit_server rejects them.
//
// --query-file lines are `user<TAB>query[<TAB>true|false]`; the optional
// third field replays a logged answer instead of letting the server evaluate
// the query (a line without tabs is a query for --user). Audit output
// columns:
//
//   user  query  answer  verdict  method  cached  cum_verdict  cum_method  seq
//
// Exit 0 when every response was ok, 1 on any error response or transport
// failure, 2 on bad flags.
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "net/address.h"
#include "service/protocol.h"
#include "util/status.h"

namespace {

constexpr char kUsage[] =
    "usage: audit_client --connect unix:PATH|tcp:HOST:PORT [--user NAME]\n"
    "                    [--query TEXT]... [--query-file FILE] [--repeat N]\n"
    "                    [--deadline-ms N] [--addr WORKER]\n"
    "                    [--op hello|metrics|reset_session|shutdown\n"
    "                        |add_worker|remove_worker]\n"
    "  --connect ADDR      server address (unix:PATH or tcp:HOST:PORT)\n"
    "  --socket PATH       legacy alias for --connect unix:PATH\n"
    "  --user NAME         user for --query queries and reset_session\n"
    "                      (default 'client')\n"
    "  --query TEXT        audit one query (repeatable, sent in order)\n"
    "  --query-file FILE   audit queries from FILE, one per line:\n"
    "                      user<TAB>query[<TAB>true|false]\n"
    "  --repeat N          send the whole query list N times (default 1)\n"
    "  --deadline-ms N     per-request deadline, relative\n"
    "  --op OP             send a control request instead of audits\n"
    "  --addr WORKER       worker address for add_worker / remove_worker\n";

struct QueryItem {
  std::string user;
  std::string query;
  std::optional<bool> answer;
};

struct ClientOptions {
  std::string connect_spec;
  std::string user = "client";
  std::string worker_addr;
  std::vector<QueryItem> queries;         ///< --query items (user filled later)
  const char* query_file = nullptr;
  long repeat = 1;
  long deadline_ms = 0;
  const char* op = nullptr;
  bool help = false;
};

epi::Status parse_args(int argc, char** argv, ClientOptions* out) {
  auto next_value = [&](int& i, const char* flag, const char** value) {
    if (i + 1 >= argc) {
      return epi::Status::InvalidArgument(std::string(flag) + " needs a value");
    }
    *value = argv[++i];
    return epi::Status::Ok();
  };
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      out->help = true;
    } else if (std::strcmp(argv[i], "--socket") == 0) {
      if (const epi::Status s = next_value(i, "--socket", &value); !s.ok()) return s;
      out->connect_spec = std::string("unix:") + value;
    } else if (std::strcmp(argv[i], "--connect") == 0) {
      if (const epi::Status s = next_value(i, "--connect", &value); !s.ok()) return s;
      out->connect_spec = value;
    } else if (std::strcmp(argv[i], "--addr") == 0) {
      if (const epi::Status s = next_value(i, "--addr", &value); !s.ok()) return s;
      out->worker_addr = value;
    } else if (std::strcmp(argv[i], "--user") == 0) {
      if (const epi::Status s = next_value(i, "--user", &value); !s.ok()) return s;
      out->user = value;
    } else if (std::strcmp(argv[i], "--query") == 0) {
      if (const epi::Status s = next_value(i, "--query", &value); !s.ok()) return s;
      out->queries.push_back({"", value, std::nullopt});
    } else if (std::strcmp(argv[i], "--query-file") == 0) {
      if (const epi::Status s = next_value(i, "--query-file", &value); !s.ok())
        return s;
      out->query_file = value;
    } else if (std::strcmp(argv[i], "--repeat") == 0) {
      if (const epi::Status s = next_value(i, "--repeat", &value); !s.ok()) return s;
      out->repeat = std::strtol(value, nullptr, 10);
      if (out->repeat < 1) {
        return epi::Status::InvalidArgument("--repeat must be >= 1");
      }
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      if (const epi::Status s = next_value(i, "--deadline-ms", &value); !s.ok())
        return s;
      out->deadline_ms = std::strtol(value, nullptr, 10);
      if (out->deadline_ms < 0) {
        return epi::Status::InvalidArgument("--deadline-ms must be >= 0");
      }
    } else if (std::strcmp(argv[i], "--op") == 0) {
      if (const epi::Status s = next_value(i, "--op", &value); !s.ok()) return s;
      out->op = value;
    } else {
      return epi::Status::InvalidArgument(std::string("unknown flag '") +
                                          argv[i] + "'");
    }
  }
  if (!out->help && out->connect_spec.empty()) {
    return epi::Status::InvalidArgument("--connect (or --socket) is required");
  }
  return epi::Status::Ok();
}

epi::Status load_query_file(const char* path, const std::string& default_user,
                            std::vector<QueryItem>* out) {
  std::ifstream file(path);
  if (!file) {
    return epi::Status::InvalidArgument(std::string("cannot open query file '") +
                                        path + "'");
  }
  std::string line;
  int line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    QueryItem item;
    const std::size_t tab1 = line.find('\t');
    if (tab1 == std::string::npos) {
      item.user = default_user;
      item.query = line;
    } else {
      item.user = line.substr(0, tab1);
      const std::size_t tab2 = line.find('\t', tab1 + 1);
      item.query = line.substr(tab1 + 1, tab2 == std::string::npos
                                             ? std::string::npos
                                             : tab2 - tab1 - 1);
      if (tab2 != std::string::npos) {
        const std::string answer = line.substr(tab2 + 1);
        if (answer == "true") {
          item.answer = true;
        } else if (answer == "false") {
          item.answer = false;
        } else {
          return epi::Status::InvalidArgument(
              std::string(path) + " line " + std::to_string(line_number) +
              ": answer must be 'true' or 'false', got '" + answer + "'");
        }
      }
    }
    if (item.user.empty() || item.query.empty()) {
      return epi::Status::InvalidArgument(std::string(path) + " line " +
                                          std::to_string(line_number) +
                                          ": empty user or query");
    }
    out->push_back(std::move(item));
  }
  return epi::Status::Ok();
}

/// Connection with one-line-at-a-time request/response exchange, framed by
/// the same service::LineFramer the server side uses.
class Connection {
 public:
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  epi::Status open(const std::string& spec) {
    epi::net::Address addr;
    if (const epi::Status s = epi::net::parse_address(spec, &addr); !s.ok()) {
      return s;
    }
    return epi::net::connect_to(addr, &fd_);
  }

  epi::Status roundtrip(const epi::service::WireRequest& request,
                        epi::service::WireResponse* response) {
    const std::string frame = serialize_request(request) + "\n";
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return epi::Status::Unavailable(std::string("send: ") +
                                        std::strerror(errno));
      }
      sent += static_cast<std::size_t>(n);
    }
    std::string line;
    while (!framer_.next(&line)) {
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        return epi::Status::Unavailable(std::string("read: ") +
                                        std::strerror(errno));
      }
      if (n == 0) {
        return epi::Status::Unavailable("server closed the connection");
      }
      if (const epi::Status s =
              framer_.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
          !s.ok()) {
        return s;
      }
    }
    return parse_response(line, response);
  }

 private:
  int fd_ = -1;
  epi::service::LineFramer framer_;
};

void print_audit_line(const QueryItem& item,
                      const epi::service::WireResponse& response) {
  if (!response.ok) {
    std::printf("%s\t%s\tERROR\t%s\t%s\n", item.user.c_str(), item.query.c_str(),
                response.code.c_str(), response.error.c_str());
    return;
  }
  if (response.denied) {
    std::printf("%s\t%s\tDENIED\n", item.user.c_str(), item.query.c_str());
    return;
  }
  std::printf("%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%llu\n", item.user.c_str(),
              item.query.c_str(), response.answer ? "true" : "false",
              response.verdict.c_str(), response.method.c_str(),
              response.cached ? "cached" : "engine",
              response.cumulative_verdict.c_str(),
              response.cumulative_method.c_str(),
              static_cast<unsigned long long>(response.sequence));
}

epi::Status run(const ClientOptions& options, bool* any_failed) {
  Connection connection;
  if (const epi::Status s = connection.open(options.connect_spec); !s.ok()) return s;

  std::uint64_t next_id = 1;
  if (options.op != nullptr) {
    epi::service::WireRequest request;
    request.id = next_id++;
    request.user = options.user;
    if (std::strcmp(options.op, "hello") == 0) {
      request.op = epi::service::Op::kHello;
    } else if (std::strcmp(options.op, "metrics") == 0) {
      request.op = epi::service::Op::kMetrics;
    } else if (std::strcmp(options.op, "reset_session") == 0) {
      request.op = epi::service::Op::kResetSession;
    } else if (std::strcmp(options.op, "shutdown") == 0) {
      request.op = epi::service::Op::kShutdown;
    } else if (std::strcmp(options.op, "add_worker") == 0) {
      request.op = epi::service::Op::kAddWorker;
      request.addr = options.worker_addr;
    } else if (std::strcmp(options.op, "remove_worker") == 0) {
      request.op = epi::service::Op::kRemoveWorker;
      request.addr = options.worker_addr;
    } else {
      return epi::Status::InvalidArgument(std::string("unknown --op '") +
                                          options.op + "'");
    }
    epi::service::WireResponse response;
    if (const epi::Status s = connection.roundtrip(request, &response); !s.ok()) {
      return s;
    }
    if (!response.ok) {
      *any_failed = true;
      std::fprintf(stderr, "%s\n", response.error.c_str());
      return epi::Status::Ok();
    }
    switch (request.op) {
      case epi::service::Op::kHello:
        std::printf("audit_query\t%s\nprior\t%s\n", response.audit_query.c_str(),
                    response.prior.c_str());
        break;
      case epi::service::Op::kMetrics:
        std::printf("%s\n", response.metrics_json.c_str());
        break;
      default:
        std::printf("ok\n");
        break;
    }
    return epi::Status::Ok();
  }

  std::vector<QueryItem> queries;
  for (QueryItem item : options.queries) {
    item.user = options.user;
    queries.push_back(std::move(item));
  }
  if (options.query_file != nullptr) {
    if (const epi::Status s =
            load_query_file(options.query_file, options.user, &queries);
        !s.ok()) {
      return s;
    }
  }
  if (queries.empty()) {
    return epi::Status::InvalidArgument(
        "nothing to send: give --query, --query-file or --op");
  }

  for (long round = 0; round < options.repeat; ++round) {
    for (const QueryItem& item : queries) {
      epi::service::WireRequest request;
      request.op = epi::service::Op::kAudit;
      request.id = next_id++;
      request.user = item.user;
      request.query = item.query;
      request.answer = item.answer;
      request.deadline_ms = options.deadline_ms;
      epi::service::WireResponse response;
      if (const epi::Status s = connection.roundtrip(request, &response); !s.ok()) {
        return s;
      }
      if (!response.ok) *any_failed = true;
      print_audit_line(item, response);
    }
  }
  return epi::Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  ClientOptions options;
  if (const epi::Status s = parse_args(argc, argv, &options); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.to_string().c_str(), kUsage);
    return 2;
  }
  if (options.help) {
    std::printf("%s", kUsage);
    return 0;
  }
  bool any_failed = false;
  epi::Status status = epi::Status::Ok();
  try {
    status = run(options, &any_failed);
  } catch (const std::exception& e) {
    status = epi::Status::Internal(e.what());
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    return 1;
  }
  return any_failed ? 1 : 0;
}
