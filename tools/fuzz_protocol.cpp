// libFuzzer harness for the audit service's JSON-lines wire protocol
// (service/protocol.h). Feeds arbitrary bytes to both parsers and asserts
// the round-trip invariant on every accepted frame: parse -> serialize ->
// parse must succeed and agree field by field. Parsing is Status-first, so
// ANY crash, sanitizer report or exception is a finding.
//
// With clang this links against -fsanitize=fuzzer; elsewhere
// fuzz_replay_main.cpp replays the checked-in corpus (tests/fuzz/protocol)
// so the smoke test runs under every toolchain.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "service/protocol.h"

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    // abort() so both libFuzzer and the replay driver flag the input.
    std::fprintf(stderr, "fuzz_protocol invariant violated: %s\n", what);
    std::abort();
  }
}

void fuzz_request(const std::string& line) {
  epi::service::WireRequest request;
  if (!epi::service::parse_request(line, &request).ok()) return;
  const std::string wire = epi::service::serialize_request(request);
  epi::service::WireRequest again;
  check(epi::service::parse_request(wire, &again).ok(),
        "serialized request failed to re-parse");
  check(again.op == request.op && again.id == request.id &&
            again.user == request.user && again.query == request.query &&
            again.answer == request.answer &&
            again.deadline_ms == request.deadline_ms &&
            again.addr == request.addr,
        "request round-trip changed a field");
}

/// splitmix64: derives deterministic-but-arbitrary chunk sizes from the
/// input itself, so the corpus explores split points too.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Feeds the same bytes through LineFramer twice — once whole, once cut at
/// input-derived split points (including 1-byte chunks) — and asserts the
/// framed lines, the sticky overflow status and the residual byte count all
/// agree. A small cap makes the ResourceExhausted path reachable from
/// ordinary corpus entries.
void fuzz_framer(const std::string& bytes) {
  constexpr std::size_t kCap = 64;
  epi::service::LineFramer whole(kCap);
  (void)whole.feed(bytes);
  std::vector<std::string> expect;
  for (std::string line; whole.next(&line);) expect.push_back(line);

  epi::service::LineFramer split(kCap);
  std::uint64_t state = mix64(bytes.size() + 1);
  for (const char c : bytes) state = mix64(state ^ static_cast<unsigned char>(c));
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    state = mix64(state);
    // Chunk sizes 1..17: plenty of single-byte deliveries plus short bursts.
    const std::size_t len =
        std::min<std::size_t>(1 + state % 17, bytes.size() - pos);
    (void)split.feed(std::string_view(bytes).substr(pos, len));
    pos += len;
  }
  std::vector<std::string> got;
  for (std::string line; split.next(&line);) got.push_back(line);

  check(got == expect, "framed lines depend on the split points");
  check(split.status().ok() == whole.status().ok(),
        "overflow status depends on the split points");
  check(split.buffered() == whole.buffered(),
        "residual byte count depends on the split points");
  // Every line the framer yields must frame exactly the bytes between
  // terminators: re-joining reproduces the consumed prefix.
  std::size_t consumed = 0;
  for (const std::string& line : expect) {
    check(bytes.compare(consumed, line.size(), line) == 0 &&
              bytes.size() > consumed + line.size() &&
              bytes[consumed + line.size()] == '\n',
          "framed line does not match the input bytes");
    consumed += line.size() + 1;
  }
}

void fuzz_response(const std::string& line) {
  epi::service::WireResponse response;
  if (!epi::service::parse_response(line, &response).ok()) return;
  const std::string wire = epi::service::serialize_response(response);
  epi::service::WireResponse again;
  check(epi::service::parse_response(wire, &again).ok(),
        "serialized response failed to re-parse");
  check(again.id == response.id && again.ok == response.ok &&
            again.verdict == response.verdict &&
            again.method == response.method &&
            again.cumulative_verdict == response.cumulative_verdict &&
            again.metrics_json == response.metrics_json &&
            again.sequence == response.sequence,
        "response round-trip changed a field");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string line(reinterpret_cast<const char*>(data), size);
  fuzz_request(line);
  fuzz_response(line);
  fuzz_framer(line);
  return 0;
}
