// libFuzzer harness for the audit service's JSON-lines wire protocol
// (service/protocol.h). Feeds arbitrary bytes to both parsers and asserts
// the round-trip invariant on every accepted frame: parse -> serialize ->
// parse must succeed and agree field by field. Parsing is Status-first, so
// ANY crash, sanitizer report or exception is a finding.
//
// With clang this links against -fsanitize=fuzzer; elsewhere
// fuzz_replay_main.cpp replays the checked-in corpus (tests/fuzz/protocol)
// so the smoke test runs under every toolchain.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "service/protocol.h"

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    // abort() so both libFuzzer and the replay driver flag the input.
    std::fprintf(stderr, "fuzz_protocol invariant violated: %s\n", what);
    std::abort();
  }
}

void fuzz_request(const std::string& line) {
  epi::service::WireRequest request;
  if (!epi::service::parse_request(line, &request).ok()) return;
  const std::string wire = epi::service::serialize_request(request);
  epi::service::WireRequest again;
  check(epi::service::parse_request(wire, &again).ok(),
        "serialized request failed to re-parse");
  check(again.op == request.op && again.id == request.id &&
            again.user == request.user && again.query == request.query &&
            again.answer == request.answer &&
            again.deadline_ms == request.deadline_ms,
        "request round-trip changed a field");
}

void fuzz_response(const std::string& line) {
  epi::service::WireResponse response;
  if (!epi::service::parse_response(line, &response).ok()) return;
  const std::string wire = epi::service::serialize_response(response);
  epi::service::WireResponse again;
  check(epi::service::parse_response(wire, &again).ok(),
        "serialized response failed to re-parse");
  check(again.id == response.id && again.ok == response.ok &&
            again.verdict == response.verdict &&
            again.method == response.method &&
            again.cumulative_verdict == response.cumulative_verdict &&
            again.metrics_json == response.metrics_json &&
            again.sequence == response.sequence,
        "response round-trip changed a field");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string line(reinterpret_cast<const char*>(data), size);
  fuzz_request(line);
  fuzz_response(line);
  return 0;
}
