// libFuzzer harness for the query parser (db/parser.h). Arbitrary bytes go
// through the Status-first try_parse_query; on every accepted input the AST
// is printed (Query::to_string) and re-parsed, and the two parses must
// evaluate identically on a small universe — a printer/parser round-trip
// plus a semantic self-check. Any crash, sanitizer report or exception is a
// finding (parse_query may throw on invalid input by contract, but
// try_parse_query must not).
//
// With clang this links against -fsanitize=fuzzer; elsewhere
// fuzz_replay_main.cpp replays the checked-in corpus (tests/fuzz/query).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "db/parser.h"
#include "db/record.h"

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_query_parser invariant violated: %s\n", what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  epi::QueryPtr query;
  if (!epi::try_parse_query(text, &query).ok()) return 0;
  // Note: `query != nullptr` would ADL-resolve through the repo's
  // QueryPtr operator! combinator; compare the raw pointer instead.
  check(query.get() != nullptr, "Ok parse left a null query");

  const std::string printed = query->to_string();
  epi::QueryPtr again;
  check(epi::try_parse_query(printed, &again).ok(),
        "printed query failed to re-parse");
  check(again->to_string() == printed, "printer not a fixpoint");

  // Semantic agreement of the two ASTs over a small universe. Atoms the
  // input happened to name are mapped onto r0..r5 coordinates; queries over
  // unknown records evaluate against absent coordinates, which both ASTs
  // must treat identically.
  epi::RecordUniverse universe;
  for (int i = 0; i < 6; ++i) universe.add("r" + std::to_string(i));
  for (epi::World w = 0; w < (epi::World{1} << 6); ++w) {
    bool lhs, rhs;
    try {
      lhs = query->evaluate(universe, w);
    } catch (const std::invalid_argument&) {
      return 0;  // queries naming unknown records reject evaluation
    }
    try {
      rhs = again->evaluate(universe, w);
    } catch (const std::invalid_argument&) {
      check(false, "re-parsed query rejects evaluation the original allowed");
      return 0;
    }
    check(lhs == rhs, "round-tripped query evaluates differently");
  }
  return 0;
}
