// epi_workload: command-line front-end for the workload-family registry
// (src/workloads/family.h). Emits a family's deterministic request stream,
// its scenario script (consumable by audit_cli and audit_server
// --scenario), its distinct query texts (loadgen --query fodder), or a
// human-readable summary.
//
// Exit codes: 0 success, 2 usage error, 3 generation failure.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <set>
#include <string>

#include "workloads/family.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: epi_workload --family=<name> [options]\n"
        "       epi_workload --list\n"
        "options:\n"
        "  --family=<name>  one of the registered families (see --list)\n"
        "  --seed=<u64>     generator seed (default 2008)\n"
        "  --records=<n>    universe size knob, 0 = family default\n"
        "  --requests=<n>   stream length target, 0 = family default\n"
        "  --users=<n>      distinct users/agents, 0 = family default\n"
        "  --emit=<what>    stream | scenario | queries | summary\n"
        "                   (default stream)\n"
        "emit formats:\n"
        "  stream    one request per line: <user>\\t<query>\\t<0|1>\n"
        "  scenario  scenario script (audit_cli / audit_server --scenario)\n"
        "  queries   distinct stream query texts, one per line\n"
        "  summary   family, knobs, shape and stream statistics\n";
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  try {
    size_t pos = 0;
    *out = std::stoull(text, &pos);
    return pos == text.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string family_name;
  std::string emit = "stream";
  epi::workloads::FamilyOptions options;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    std::uint64_t parsed = 0;
    if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg.rfind("--family=", 0) == 0) {
      family_name = value("--family=");
    } else if (arg.rfind("--emit=", 0) == 0) {
      emit = value("--emit=");
    } else if (arg.rfind("--seed=", 0) == 0 && parse_u64(value("--seed="), &parsed)) {
      options.seed = parsed;
    } else if (arg.rfind("--records=", 0) == 0 &&
               parse_u64(value("--records="), &parsed)) {
      options.records = static_cast<unsigned>(parsed);
    } else if (arg.rfind("--requests=", 0) == 0 &&
               parse_u64(value("--requests="), &parsed)) {
      options.requests = static_cast<unsigned>(parsed);
    } else if (arg.rfind("--users=", 0) == 0 &&
               parse_u64(value("--users="), &parsed)) {
      options.users = static_cast<unsigned>(parsed);
    } else {
      std::cerr << "unknown or malformed argument: " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }

  if (list) {
    for (const epi::workloads::WorkloadFamily* family :
         epi::workloads::all_families()) {
      std::cout << family->name() << "\t" << family->description() << "\n";
    }
    return 0;
  }
  if (family_name.empty()) {
    std::cerr << "missing --family (or --list)\n";
    usage(std::cerr);
    return 2;
  }
  const epi::workloads::WorkloadFamily* family =
      epi::workloads::find_family(family_name);
  if (family == nullptr) {
    std::cerr << "unknown family '" << family_name << "'; registered:";
    for (const std::string& name : epi::workloads::family_names()) {
      std::cerr << " " << name;
    }
    std::cerr << "\n";
    return 2;
  }

  epi::workloads::GeneratedWorkload workload;
  if (epi::Status generated = family->generate(options, &workload);
      !generated.ok()) {
    std::cerr << generated.to_string() << "\n";
    return 3;
  }
  if (epi::Status valid = epi::workloads::validate_workload(*family, workload);
      !valid.ok()) {
    std::cerr << "generated workload violates its shape: " << valid.to_string()
              << "\n";
    return 3;
  }

  if (emit == "stream") {
    for (const epi::workloads::StreamRequest& request : workload.stream) {
      std::cout << request.user << "\t" << request.query_text << "\t"
                << (request.answer ? 1 : 0) << "\n";
    }
  } else if (emit == "scenario") {
    std::cout << epi::workloads::to_scenario_script(*family, workload);
  } else if (emit == "queries") {
    std::set<std::string> seen;
    for (const epi::workloads::StreamRequest& request : workload.stream) {
      if (seen.insert(request.query_text).second) {
        std::cout << request.query_text << "\n";
      }
    }
  } else if (emit == "summary") {
    const epi::workloads::WorkloadShape shape = family->shape();
    std::set<std::string> users;
    for (const epi::workloads::StreamRequest& request : workload.stream) {
      users.insert(request.user);
    }
    std::cout << "family: " << family->name() << "\n"
              << "description: " << family->description() << "\n"
              << "prior: " << epi::to_string(workload.prior) << "\n"
              << "records: " << workload.universe.size() << "\n"
              << "requests: " << workload.stream.size() << "\n"
              << "users: " << users.size() << "\n"
              << "audit queries: " << workload.audit_queries.size() << "\n"
              << "shape: min_users=" << shape.min_users
              << " min_requests=" << shape.min_requests
              << " counting=" << (shape.counting_queries ? "yes" : "no")
              << " consistent=" << (shape.consistent_answers ? "yes" : "no")
              << " max_records=" << shape.max_coordinates << "\n";
  } else {
    std::cerr << "unknown --emit mode '" << emit << "'\n";
    usage(std::cerr);
    return 2;
  }
  return 0;
}
