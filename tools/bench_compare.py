#!/usr/bin/env python3
"""CI perf-regression gate over the shared bench_json.h schema.

Usage: bench_compare.py <baseline.json> <fresh.json>... [--tolerance 0.10]

All files are `{"bench": ..., "results": [{...}, ...]}` documents emitted
by a bench's `--json` mode. Rows are keyed by their dimension fields (the
strings and integers: axis, prior, kernel, n, batch, ...) and compared on
their metric fields (the floats). A metric's name carries its direction:

  *_per_sec, speedup*        higher is better — fail when fresh drops more
                             than the tolerance below baseline
  *_ns                       lower is better — fail when fresh rises more
                             than the tolerance above baseline
  anything else              informational, never gated (verdict counts,
                             hit rates, overhead percentages)

Noise guards, so a 10% gate is usable on shared CI runners:
  * several fresh snapshots may be given; each metric gates against its
    best value across the runs (max for rates, min for timings), so a
    regression fires only when *every* run regressed — one-sided timer /
    scheduler noise in a single run cannot fail the gate (CI runs each
    bench three times);
  * ns metrics where both sides are under 50 ns are skipped (timer floor);
  * thread_scaling / client_scaling rows above one thread/client are
    informational — their variance on small CI boxes dwarfs any signal;
    the one-thread row still gates;
  * tail percentiles (p95_ns / p99_ns / p999_ns) are informational — an
    open-loop tail on a shared runner is dominated by scheduler jitter;
    the median (p50_ns) and goodput still gate.

Exit status: 0 clean, 1 regression(s) found, 2 usage / schema trouble.

Refreshing the baseline (the documented workflow, see README): rebuild
Release, run each bench with `--json > BENCH_<name>.json`, and commit the
new snapshots together with the change that moved them — the diff is the
perf trajectory.
"""

import argparse
import json
import sys

# Rows on these axes gate only their serial (one worker) entry.
SCALING_AXES = {"thread_scaling": "threads", "client_scaling": "clients"}

# Below this many nanoseconds the steady_clock resolution dominates.
NS_FLOOR = 50.0

# Latency-distribution tails: tracked in the snapshots but never gated —
# one descheduling blip on a shared runner moves p99.9 by orders of
# magnitude while leaving the median untouched.
TAIL_METRICS = {"p95_ns", "p99_ns", "p999_ns"}


def direction(key):
    """+1 higher-is-better, -1 lower-is-better, 0 informational."""
    if key in TAIL_METRICS:
        return 0
    if key.endswith("_per_sec") or key == "speedup" or key.startswith("speedup_"):
        return 1
    if key.endswith("_ns"):
        return -1
    return 0


def is_metric(key):
    """Measured fields — excluded from row identity, gated per direction().

    *_pct fields (tracing overhead, cache hit rates) and tail percentiles
    are derived from timings and vary run to run; leaving them in the row
    key would make every comparison report the row as missing.
    """
    return direction(key) != 0 or key.endswith("_pct") or key in TAIL_METRICS


def row_key(row):
    """The row's identity: every non-metric field, in a stable order.

    Metrics are recognized by name, not JSON type — integral rates print
    without a decimal point and would otherwise leak into the key.
    """
    return tuple(sorted((k, v) for k, v in row.items() if not is_metric(k)))


def fmt_key(key):
    return ", ".join(f"{k}={v}" for k, v in key)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
        return doc["bench"], {row_key(r): r for r in doc["results"]}
    except (OSError, ValueError, KeyError, TypeError) as e:
        sys.exit(f"bench_compare: cannot read '{path}': {e}")


def merge_best(snapshots):
    """Folds several fresh runs into one best-of row map.

    Directional metrics take their best value across the runs; identity
    and informational fields come from the first run that has the row.
    """
    merged = {}
    for rows in snapshots:
        for key, row in rows.items():
            best = merged.setdefault(key, dict(row))
            for metric, value in row.items():
                d = direction(metric) if isinstance(value, (int, float)) else 0
                if d == 0:
                    continue
                have = best.get(metric)
                if not isinstance(have, (int, float)):
                    best[metric] = value
                elif (value > have) if d == 1 else (value < have):
                    best[metric] = value
    return merged


def is_informational_row(row):
    axis = row.get("axis")
    if axis in SCALING_AXES:
        return row.get(SCALING_AXES[axis], 1) != 1
    return False


def compare(baseline, fresh, tolerance):
    """Returns (failures, checked, skipped) message lists."""
    failures, checked, skipped = [], [], []
    for key, base_row in baseline.items():
        fresh_row = fresh.get(key)
        if fresh_row is None:
            failures.append(f"row missing from fresh run: {fmt_key(key)}")
            continue
        informational = is_informational_row(base_row)
        for metric, base_value in base_row.items():
            d = direction(metric) if isinstance(base_value, (int, float)) else 0
            if d == 0:
                continue
            fresh_value = fresh_row.get(metric)
            if not isinstance(fresh_value, (int, float)):
                failures.append(
                    f"metric '{metric}' missing from fresh row: {fmt_key(key)}"
                )
                continue
            where = f"{metric} [{fmt_key(key)}]"
            if informational:
                skipped.append(f"{where}: informational (scaling row)")
                continue
            if d == -1 and base_value < NS_FLOOR and fresh_value < NS_FLOOR:
                skipped.append(f"{where}: under the {NS_FLOOR:.0f} ns floor")
                continue
            if base_value <= 0:
                skipped.append(f"{where}: non-positive baseline")
                continue
            ratio = fresh_value / base_value
            regressed = (
                ratio < 1.0 - tolerance if d == 1 else ratio > 1.0 + tolerance
            )
            line = (
                f"{where}: baseline {base_value:.10g} -> fresh "
                f"{fresh_value:.10g} ({(ratio - 1.0) * 100.0:+.1f}%)"
            )
            if regressed:
                failures.append(line)
            else:
                checked.append(line)
    return failures, checked, skipped


def main():
    parser = argparse.ArgumentParser(
        description="fail on >tolerance throughput regression vs a "
        "checked-in bench snapshot"
    )
    parser.add_argument("baseline")
    parser.add_argument(
        "fresh",
        nargs="+",
        help="one or more fresh snapshots; metrics gate against their best",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed relative regression (default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print every checked metric"
    )
    parser.add_argument(
        "--write-best",
        metavar="PATH",
        help="write the merged best-of fresh runs as a snapshot document "
        "(the baseline-refresh payload)",
    )
    args = parser.parse_args()

    base_name, baseline = load(args.baseline)
    fresh_snapshots = []
    for path in args.fresh:
        fresh_name, rows = load(path)
        if base_name != fresh_name:
            sys.exit(
                f"bench_compare: snapshots disagree on the bench "
                f"('{base_name}' vs '{fresh_name}')"
            )
        fresh_snapshots.append(rows)
    fresh = merge_best(fresh_snapshots)
    if args.write_best:
        with open(args.write_best, "w") as f:
            json.dump(
                {"bench": base_name, "results": list(fresh.values())},
                f,
                indent=1,
            )
            f.write("\n")

    failures, checked, skipped = compare(baseline, fresh, args.tolerance)

    print(
        f"bench_compare [{base_name}]: best of {len(fresh_snapshots)} "
        f"run(s): {len(checked)} metrics within "
        f"{args.tolerance:.0%}, {len(skipped)} informational/skipped, "
        f"{len(failures)} regressions"
    )
    if args.verbose:
        for line in checked:
            print(f"  ok   {line}")
        for line in skipped:
            print(f"  skip {line}")
    for line in failures:
        print(f"  FAIL {line}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
