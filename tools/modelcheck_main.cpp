// epi_modelcheck: the differential model-checking CLI. Runs seeded random
// scenarios through every criterion / the engine / the audit service and
// cross-checks them against the brute-force definition oracles.
//
//   epi_modelcheck                         # full run (10,000 scenarios)
//   epi_modelcheck --cases=200             # quick sweep (200 per check)
//   epi_modelcheck --seed=7 --check=sigma-intervals --case=143   # repro
//
// Exit codes: 0 all checks agree, 1 disagreement found, 2 usage error.
// docs/testing.md documents the repro workflow from a CI log.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "testing/modelcheck.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: epi_modelcheck [options]\n"
        "  --seed=<u64>     master seed (default 2008)\n"
        "  --cases=<u64>    scenarios per check (default 1250; 10 checks)\n"
        "  --check=<name>   run a single check (see --list)\n"
        "  --case=<u64>     run a single case index (repro mode)\n"
        "  --max-m=<n>      largest finite universe (default 9)\n"
        "  --max-n=<n>      largest hypercube dimension (default 4)\n"
        "  --samples=<n>    exact priors sampled per Safe verdict (default 12)\n"
        "  --list           print check names and exit\n"
        "  --quiet          suppress per-check progress lines\n";
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  epi::testing::ModelCheckOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    std::uint64_t u = 0;
    if (key == "--list") {
      for (const std::string& name : epi::testing::check_names()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (key == "--quiet") {
      quiet = true;
    } else if (key == "--help" || key == "-h") {
      usage(std::cout);
      return 0;
    } else if (key == "--seed" && parse_u64(value, &u)) {
      options.seed = u;
    } else if (key == "--cases" && parse_u64(value, &u)) {
      options.cases_per_check = u;
    } else if (key == "--check" && !value.empty()) {
      options.only_check = value;
    } else if (key == "--case" && parse_u64(value, &u)) {
      options.only_case = u;
    } else if (key == "--max-m" && parse_u64(value, &u)) {
      options.max_m = static_cast<unsigned>(u);
    } else if (key == "--max-n" && parse_u64(value, &u)) {
      options.max_n = static_cast<unsigned>(u);
    } else if (key == "--samples" && parse_u64(value, &u)) {
      options.prior_samples = u;
    } else {
      std::cerr << "epi_modelcheck: bad argument '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  if (!options.only_check.empty()) {
    bool known = false;
    for (const std::string& name : epi::testing::check_names()) {
      known = known || name == options.only_check;
    }
    if (!known) {
      std::cerr << "epi_modelcheck: unknown check '" << options.only_check
                << "' (see --list)\n";
      return 2;
    }
  }

  const epi::testing::ModelCheckReport report =
      epi::testing::run_model_check(options, quiet ? nullptr : &std::cout);

  std::cout << report.total_cases << " scenarios, " << report.failures.size()
            << " failures (seed " << options.seed << ")\n";
  for (const epi::testing::CheckFailure& f : report.failures) {
    std::cout << "FAIL [" << f.check << " #" << f.case_index << "] "
              << f.description << "\n";
  }
  return report.ok() ? 0 : 1;
}
