#!/usr/bin/env bash
# Drives the serving tier with workload-family traffic: generates a family
# scenario with epi_workload, boots an audit_server on it (optionally behind
# a shard_router), then replays the family's own query mix through loadgen
# and requires error-free goodput. The third consumer of the family registry
# (after the workload-parity model check and the bench family axes) — proof
# that every family's traffic survives the wire protocol, the router hash
# ring and the session tier, not just the in-process API.
#
# Usage:
#   workload_replay.sh <epi_workload> <audit_server> <loadgen> <family> \
#                      [shard_router]
#
# With a shard_router argument the scenario is served by 2 workers behind
# the router; without it, by a single audit_server. Exit 0 iff loadgen
# completed with zero errors and nonzero goodput.
set -u

EPI_WORKLOAD="$1"
AUDIT_SERVER="$2"
LOADGEN="$3"
FAMILY="$4"
SHARD_ROUTER="${5:-}"

WORK_DIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
  done
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

SCENARIO="$WORK_DIR/$FAMILY.scn"
QUERIES="$WORK_DIR/$FAMILY.queries"
"$EPI_WORKLOAD" --family="$FAMILY" --emit=scenario > "$SCENARIO" || {
  echo "FAIL: scenario generation for family '$FAMILY'"; exit 1; }
"$EPI_WORKLOAD" --family="$FAMILY" --emit=queries > "$QUERIES" || {
  echo "FAIL: query-list generation for family '$FAMILY'"; exit 1; }

# loadgen replays the family's own distinct queries (capped at 12 so the
# command line stays sane for long streams).
QUERY_ARGS=()
while IFS= read -r query; do
  QUERY_ARGS+=(--query "$query")
  [ "${#QUERY_ARGS[@]}" -ge 24 ] && break
done < "$QUERIES"

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "FAIL: socket $1 never appeared"
  return 1
}

if [ -n "$SHARD_ROUTER" ]; then
  for i in 0 1; do
    "$AUDIT_SERVER" --listen "unix:$WORK_DIR/worker$i.sock" \
      --scenario "$SCENARIO" > "$WORK_DIR/worker$i.log" 2>&1 &
    PIDS+=($!)
  done
  wait_for_socket "$WORK_DIR/worker0.sock" || exit 1
  wait_for_socket "$WORK_DIR/worker1.sock" || exit 1
  "$SHARD_ROUTER" --listen "unix:$WORK_DIR/router.sock" \
    --worker "unix:$WORK_DIR/worker0.sock" \
    --worker "unix:$WORK_DIR/worker1.sock" \
    > "$WORK_DIR/router.log" 2>&1 &
  PIDS+=($!)
  FRONT="$WORK_DIR/router.sock"
else
  "$AUDIT_SERVER" --listen "unix:$WORK_DIR/server.sock" \
    --scenario "$SCENARIO" > "$WORK_DIR/server.log" 2>&1 &
  PIDS+=($!)
  FRONT="$WORK_DIR/server.sock"
fi
wait_for_socket "$FRONT" || { cat "$WORK_DIR"/*.log; exit 1; }

OUT="$("$LOADGEN" --connect "unix:$FRONT" --rate 400 --duration-s 2 \
  --warmup-s 0 --connections 4 --users 8 --user-prefix "$FAMILY" --json \
  "${QUERY_ARGS[@]}")" || { echo "$OUT"; cat "$WORK_DIR"/*.log; exit 1; }
echo "$OUT"

GOODPUT="$(echo "$OUT" | sed -n 's/.*"goodput_per_sec": *\([0-9.]*\).*/\1/p' | head -1)"
ERROR_PCT="$(echo "$OUT" | sed -n 's/.*"error_pct": *\([0-9.]*\).*/\1/p' | head -1)"
if [ -z "$GOODPUT" ] || [ "${GOODPUT%%.*}" -eq 0 ]; then
  echo "FAIL: zero goodput for family '$FAMILY'"
  cat "$WORK_DIR"/*.log
  exit 1
fi
if [ -n "$ERROR_PCT" ] && [ "${ERROR_PCT%%.*}" -ne 0 ]; then
  echo "FAIL: ${ERROR_PCT}% loadgen errors for family '$FAMILY'"
  cat "$WORK_DIR"/*.log
  exit 1
fi
echo "ok: family '$FAMILY' served at ${GOODPUT}/s with 0 errors"
