// Corpus-replay driver for the fuzz harnesses on toolchains without
// libFuzzer (the repo's gcc builds). Accepts the same command line shape as
// a libFuzzer binary — file and directory arguments are inputs, dash
// arguments are ignored — so the fuzz-smoke CTest entry is identical under
// both toolchains. Compiled in only when EPI_FUZZER_ENGINE is off
// (tools/CMakeLists.txt); with clang the real -fsanitize=fuzzer main links
// instead.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz replay: cannot read %s\n", path.c_str());
    return 1;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer-style flags
    const std::filesystem::path path(arg);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(path);
    }
  }
  int failures = 0;
  for (const auto& path : inputs) failures += replay_file(path);
  std::printf("fuzz replay: %zu inputs, %d unreadable\n", inputs.size(),
              failures);
  return failures == 0 ? 0 : 1;
}
