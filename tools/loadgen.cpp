// Open-loop load generator for audit_server / shard_router: sends audit
// requests on a fixed wall-clock cadence (`--rate` per second) regardless of
// how fast responses come back, and measures each latency from the request's
// *intended* send time — the coordinated-omission-safe convention. A server
// that stalls cannot slow the generator down and thereby hide the stall from
// the percentiles: queued-behind requests keep their original schedule, so
// the backlog shows up as tail latency, exactly as real open-loop traffic
// would experience it.
//
// Usage: loadgen --connect unix:PATH|tcp:HOST:PORT [--rate N] [--duration-s N]
//               [--warmup-s N] [--connections C] [--users U]
//               [--user-prefix TEXT] [--query TEXT]... [--drain-timeout-s N]
//               [--json]
//
// Each user is pinned to one connection (user index mod C), so per-user
// disclosure order is preserved end to end — the property the sharded
// serving tier guarantees — while responses on one connection may interleave
// across users (a router talks to many workers); matching is by request id,
// never by arrival order.
//
// Text mode prints a percentile table; --json emits the shared
// bench_json.h schema (axis "loadgen") consumed by tools/bench_compare.py:
// goodput_per_sec and p50_ns gate in CI, tail percentiles ride along
// informationally (see TAIL_METRICS in bench_compare.py).
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_json.h"
#include "net/address.h"
#include "service/protocol.h"
#include "util/status.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr char kUsage[] =
    "usage: loadgen --connect unix:PATH|tcp:HOST:PORT [--rate N]\n"
    "              [--duration-s N] [--warmup-s N] [--connections C]\n"
    "              [--users U] [--user-prefix TEXT] [--query TEXT]...\n"
    "              [--drain-timeout-s N]\n"
    "              [--json]\n"
    "  --connect ADDR       server or router address (required)\n"
    "  --rate N             target requests per second (default 1000)\n"
    "  --duration-s N       measured window in seconds (default 10)\n"
    "  --warmup-s N         unmeasured warm-up seconds at the same rate\n"
    "                       (default 1)\n"
    "  --connections C      client connections (default 2)\n"
    "  --users U            distinct session keys, pinned to connections\n"
    "                       (default 8)\n"
    "  --user-prefix TEXT   session-key prefix (default 'user'; keys are\n"
    "                       <prefix>0 .. <prefix>U-1)\n"
    "  --query TEXT         audit query (repeatable, cycled; default\n"
    "                       'bob_hiv' for the built-in demo scenario)\n"
    "  --session-length N   monotone-session mode: after N audits a user's\n"
    "                       next scheduled slot carries a reset_session, so\n"
    "                       every session is a bounded shrinking run (the\n"
    "                       incremental serving path's steady state);\n"
    "                       default 0 = one endless session per user\n"
    "  --drain-timeout-s N  wait this long after the last send for\n"
    "                       straggler responses (default 10)\n"
    "  --json               emit the bench_json.h schema instead of text\n";

struct Options {
  std::string connect_spec;
  long rate = 1000;
  long duration_s = 10;
  long warmup_s = 1;
  long connections = 2;
  long users = 8;
  std::string user_prefix = "user";
  long drain_timeout_s = 10;
  long session_length = 0;  ///< 0 = endless sessions (no resets)
  std::vector<std::string> queries;
  bool json = false;
  bool help = false;
};

epi::Status parse_args(int argc, char** argv, Options* out) {
  auto next_value = [&](int& i, const char* flag, const char** value) {
    if (i + 1 >= argc) {
      return epi::Status::InvalidArgument(std::string(flag) + " needs a value");
    }
    *value = argv[++i];
    return epi::Status::Ok();
  };
  auto next_count = [&](int& i, const char* flag, long* value, long min) {
    const char* text = nullptr;
    if (const epi::Status s = next_value(i, flag, &text); !s.ok()) return s;
    char* end = nullptr;
    *value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || *value < min) {
      return epi::Status::InvalidArgument(std::string(flag) +
                                          " needs an integer >= " +
                                          std::to_string(min));
    }
    return epi::Status::Ok();
  };
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      out->help = true;
    } else if (std::strcmp(argv[i], "--connect") == 0) {
      if (const epi::Status s = next_value(i, "--connect", &value); !s.ok())
        return s;
      out->connect_spec = value;
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      if (const epi::Status s = next_count(i, "--rate", &out->rate, 1); !s.ok())
        return s;
    } else if (std::strcmp(argv[i], "--duration-s") == 0) {
      if (const epi::Status s = next_count(i, "--duration-s", &out->duration_s, 1);
          !s.ok())
        return s;
    } else if (std::strcmp(argv[i], "--warmup-s") == 0) {
      if (const epi::Status s = next_count(i, "--warmup-s", &out->warmup_s, 0);
          !s.ok())
        return s;
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      if (const epi::Status s =
              next_count(i, "--connections", &out->connections, 1);
          !s.ok())
        return s;
    } else if (std::strcmp(argv[i], "--users") == 0) {
      if (const epi::Status s = next_count(i, "--users", &out->users, 1); !s.ok())
        return s;
    } else if (std::strcmp(argv[i], "--user-prefix") == 0) {
      if (const epi::Status s = next_value(i, "--user-prefix", &value); !s.ok())
        return s;
      out->user_prefix = value;
    } else if (std::strcmp(argv[i], "--drain-timeout-s") == 0) {
      if (const epi::Status s =
              next_count(i, "--drain-timeout-s", &out->drain_timeout_s, 1);
          !s.ok())
        return s;
    } else if (std::strcmp(argv[i], "--session-length") == 0) {
      if (const epi::Status s =
              next_count(i, "--session-length", &out->session_length, 1);
          !s.ok())
        return s;
    } else if (std::strcmp(argv[i], "--query") == 0) {
      if (const epi::Status s = next_value(i, "--query", &value); !s.ok())
        return s;
      out->queries.push_back(value);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      out->json = true;
    } else {
      return epi::Status::InvalidArgument(std::string("unknown flag '") +
                                          argv[i] + "'");
    }
  }
  if (!out->help && out->connect_spec.empty()) {
    return epi::Status::InvalidArgument("--connect is required");
  }
  if (out->queries.empty()) out->queries.push_back("bob_hiv");
  return epi::Status::Ok();
}

/// One client connection: the sender records each request's intended time
/// under the mutex; the reader matches responses by id (a router interleaves
/// users on one connection, so arrival order proves nothing).
struct Conn {
  int fd = -1;
  std::mutex mu;
  std::unordered_map<std::uint64_t, Clock::time_point> intended;
  std::thread reader;
};

struct Tally {
  std::mutex mu;
  std::vector<std::int64_t> latencies_ns;  ///< measured-window ok responses
  std::uint64_t errors = 0;                ///< measured-window !ok responses
  std::atomic<std::uint64_t> completed{0};  ///< all responses, any window
  std::condition_variable all_done;
};

void reader_loop(Conn* conn, Tally* tally, std::uint64_t measure_start_id,
                 std::uint64_t expected_total) {
  epi::service::LineFramer framer;
  char chunk[65536];
  std::string line;
  for (;;) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) return;  // server closed (or main shut the socket down)
    if (!framer.feed(std::string_view(chunk, static_cast<std::size_t>(n))).ok())
      return;
    while (framer.next(&line)) {
      const Clock::time_point now = Clock::now();
      epi::service::WireResponse response;
      if (!parse_response(line, &response).ok()) continue;
      Clock::time_point intended;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        auto it = conn->intended.find(response.id);
        if (it == conn->intended.end()) continue;  // duplicate / unknown id
        intended = it->second;
        conn->intended.erase(it);
      }
      if (response.id >= measure_start_id) {
        std::lock_guard<std::mutex> lock(tally->mu);
        if (response.ok) {
          tally->latencies_ns.push_back(
              std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                                   intended)
                  .count());
        } else {
          ++tally->errors;
        }
      }
      if (tally->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          expected_total) {
        tally->all_done.notify_all();
      }
    }
  }
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::int64_t percentile(const std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank + 0.5)];
}

epi::Status run(const Options& options, int* exit_code) {
  epi::net::Address addr;
  if (const epi::Status s = epi::net::parse_address(options.connect_spec, &addr);
      !s.ok()) {
    return s;
  }

  const std::uint64_t warmup_total =
      static_cast<std::uint64_t>(options.rate) *
      static_cast<std::uint64_t>(options.warmup_s);
  const std::uint64_t measured_total =
      static_cast<std::uint64_t>(options.rate) *
      static_cast<std::uint64_t>(options.duration_s);
  const std::uint64_t total = warmup_total + measured_total;
  const std::uint64_t measure_start_id = warmup_total + 1;  // ids are 1-based

  std::vector<std::unique_ptr<Conn>> conns;
  Tally tally;
  for (long c = 0; c < options.connections; ++c) {
    auto conn = std::make_unique<Conn>();
    if (const epi::Status s = epi::net::connect_to(addr, &conn->fd); !s.ok()) {
      for (auto& open : conns) ::shutdown(open->fd, SHUT_RDWR);
      for (auto& open : conns) {
        if (open->reader.joinable()) open->reader.join();
        ::close(open->fd);
      }
      return s;
    }
    conn->reader = std::thread(reader_loop, conn.get(), &tally,
                               measure_start_id, total);
    conns.push_back(std::move(conn));
  }

  // The open loop: request k's intended time is t0 + k/rate, independent of
  // every response. Falling behind (a blocking send under backpressure) is
  // never "made up" by rescheduling — late sends inherit late latencies.
  const Clock::time_point t0 = Clock::now();
  const std::chrono::nanoseconds step{1000000000ll / options.rate};
  // Monotone-session mode: audits per user since their last reset. When a
  // session reaches --session-length, the user's next scheduled slot sends
  // reset_session instead of an audit — same cadence, same id accounting —
  // so each session is a bounded shrinking run, as the incremental serving
  // path sees in steady state.
  std::vector<long> session_pos(static_cast<std::size_t>(options.users), 0);
  bool transport_ok = true;
  for (std::uint64_t k = 0; k < total && transport_ok; ++k) {
    const Clock::time_point intended = t0 + step * k;
    std::this_thread::sleep_until(intended);
    const std::uint64_t user_idx =
        k % static_cast<std::uint64_t>(options.users);
    Conn& conn =
        *conns[user_idx % static_cast<std::uint64_t>(options.connections)];
    epi::service::WireRequest request;
    request.id = k + 1;
    request.user = options.user_prefix + std::to_string(user_idx);
    if (options.session_length > 0 &&
        session_pos[user_idx] >= options.session_length) {
      request.op = epi::service::Op::kResetSession;
      session_pos[user_idx] = 0;
    } else {
      request.op = epi::service::Op::kAudit;
      request.query = options.queries[k % options.queries.size()];
      ++session_pos[user_idx];
    }
    {
      std::lock_guard<std::mutex> lock(conn.mu);
      conn.intended.emplace(request.id, intended);
    }
    transport_ok = send_all(conn.fd, serialize_request(request) + "\n");
  }

  // Drain stragglers, then unblock the readers.
  {
    std::mutex wait_mu;
    std::unique_lock<std::mutex> lock(wait_mu);
    tally.all_done.wait_for(
        lock, std::chrono::seconds(options.drain_timeout_s), [&] {
          return tally.completed.load(std::memory_order_acquire) >= total;
        });
  }
  for (auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
  for (auto& conn : conns) {
    conn->reader.join();
    ::close(conn->fd);
  }
  if (!transport_ok) {
    return epi::Status::Unavailable("transport failed mid-run (server gone?)");
  }

  std::vector<std::int64_t> latencies;
  std::uint64_t errors = 0;
  {
    std::lock_guard<std::mutex> lock(tally.mu);
    latencies = std::move(tally.latencies_ns);
    errors = tally.errors;
  }
  std::sort(latencies.begin(), latencies.end());
  const std::uint64_t lost = measured_total - latencies.size() - errors;
  const double goodput = static_cast<double>(latencies.size()) /
                         static_cast<double>(options.duration_s);
  const double error_pct =
      100.0 * static_cast<double>(errors + lost) /
      static_cast<double>(measured_total ? measured_total : 1);
  const std::int64_t p50 = percentile(latencies, 0.50);
  const std::int64_t p95 = percentile(latencies, 0.95);
  const std::int64_t p99 = percentile(latencies, 0.99);
  const std::int64_t p999 = percentile(latencies, 0.999);
  const char* transport =
      addr.kind == epi::net::Address::Kind::kUnix ? "unix" : "tcp";

  if (options.json) {
    epi::bench::JsonReport report("loadgen");
    report.row("loadgen")
        .field("transport", transport)
        .field("connections", static_cast<std::int64_t>(options.connections))
        .field("users", static_cast<std::int64_t>(options.users))
        .field("target_rate", static_cast<std::int64_t>(options.rate));
    if (options.session_length > 0) {
      // Dimension only in monotone-session mode so the default row's
      // identity (and the checked-in BENCH_loadgen.json baseline) is
      // unchanged.
      report.field("session_length",
                   static_cast<std::int64_t>(options.session_length));
    }
    report.field("goodput_per_sec", goodput, 0)
        .field("p50_ns", static_cast<double>(p50), 0)
        .field("p95_ns", static_cast<double>(p95), 0)
        .field("p99_ns", static_cast<double>(p99), 0)
        .field("p999_ns", static_cast<double>(p999), 0)
        .field("error_pct", error_pct);
    report.print();
  } else {
    std::printf("loadgen: %s, %ld conns, %ld users, target %ld req/s for %lds "
                "(+%lds warmup)\n",
                options.connect_spec.c_str(), options.connections,
                options.users, options.rate, options.duration_s,
                options.warmup_s);
    if (options.session_length > 0) {
      std::printf("  sessions  %10ld audits, then reset_session\n",
                  options.session_length);
    }
    std::printf("  goodput   %10.0f req/s\n", goodput);
    std::printf("  p50       %10.3f ms\n", static_cast<double>(p50) / 1e6);
    std::printf("  p95       %10.3f ms\n", static_cast<double>(p95) / 1e6);
    std::printf("  p99       %10.3f ms\n", static_cast<double>(p99) / 1e6);
    std::printf("  p99.9     %10.3f ms\n", static_cast<double>(p999) / 1e6);
    std::printf("  errors    %10llu  lost %llu  (%.2f%%)\n",
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(lost), error_pct);
  }
  // Lost responses mean the measurement is untrustworthy, not just slow.
  *exit_code = lost > 0 ? 1 : 0;
  return epi::Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (const epi::Status s = parse_args(argc, argv, &options); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.to_string().c_str(), kUsage);
    return 2;
  }
  if (options.help) {
    std::printf("%s", kUsage);
    return 0;
  }
  std::signal(SIGPIPE, SIG_IGN);
  int exit_code = 0;
  epi::Status status = epi::Status::Ok();
  try {
    status = run(options, &exit_code);
  } catch (const std::exception& e) {
    status = epi::Status::Internal(e.what());
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    return 1;
  }
  return exit_code;
}
